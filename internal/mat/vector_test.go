package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOnesAndConstant(t *testing.T) {
	v := Ones(4)
	if got := v.Sum(); got != 4 {
		t.Fatalf("Ones(4).Sum() = %v, want 4", got)
	}
	c := Constant(3, 2.5)
	if got := c.Sum(); got != 7.5 {
		t.Fatalf("Constant(3,2.5).Sum() = %v, want 7.5", got)
	}
}

func TestDot(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, -5, 6}
	if got := v.Dot(w); got != 12 {
		t.Fatalf("Dot = %v, want 12", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Vector{1}.Dot(Vector{1, 2})
}

func TestNorms(t *testing.T) {
	v := Vector{3, -4}
	if got := v.Norm2(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := v.Norm1(); got != 7 {
		t.Errorf("Norm1 = %v, want 7", got)
	}
	if got := v.NormInf(); got != 4 {
		t.Errorf("NormInf = %v, want 4", got)
	}
}

func TestNorm2ZeroVector(t *testing.T) {
	if got := NewVector(5).Norm2(); got != 0 {
		t.Fatalf("zero vector norm = %v", got)
	}
}

func TestNorm2LargeEntriesNoOverflow(t *testing.T) {
	v := Vector{1e200, 1e200}
	got := v.Norm2()
	want := 1e200 * math.Sqrt2
	if math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("Norm2 large = %v, want %v", got, want)
	}
}

func TestMeanVariance(t *testing.T) {
	v := Vector{1, 2, 3, 4}
	if got := v.Mean(); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
	if got := v.Variance(); math.Abs(got-1.25) > 1e-12 {
		t.Errorf("Variance = %v, want 1.25", got)
	}
	if got := (Vector{}).Mean(); got != 0 {
		t.Errorf("empty Mean = %v", got)
	}
	if got := (Vector{7}).Variance(); got != 0 {
		t.Errorf("singleton Variance = %v", got)
	}
}

func TestScaleAddScaled(t *testing.T) {
	v := Vector{1, 2}.Clone()
	v.Scale(3)
	if v[0] != 3 || v[1] != 6 {
		t.Fatalf("Scale result %v", v)
	}
	v.AddScaled(2, Vector{1, 1})
	if v[0] != 5 || v[1] != 8 {
		t.Fatalf("AddScaled result %v", v)
	}
}

func TestNormalize(t *testing.T) {
	v := Vector{3, 4}
	n := v.Normalize()
	if math.Abs(n-5) > 1e-12 {
		t.Fatalf("returned norm %v", n)
	}
	if math.Abs(v.Norm2()-1) > 1e-12 {
		t.Fatalf("normalized norm %v", v.Norm2())
	}
	z := NewVector(3)
	if got := z.Normalize(); got != 0 {
		t.Fatalf("zero Normalize returned %v", got)
	}
}

func TestCumSumDiffRoundTrip(t *testing.T) {
	s := Vector{0, 1, 3, 6, 10}
	d := NewVector(4)
	Diff(d, s)
	want := Vector{1, 2, 3, 4}
	if !d.Equal(want, 0) {
		t.Fatalf("Diff = %v, want %v", d, want)
	}
	back := NewVector(5)
	CumSumShift(back, d)
	if !back.Equal(s, 1e-12) {
		t.Fatalf("CumSumShift = %v, want %v", back, s)
	}
}

// Property: for any vector d, Diff(CumSumShift(d)) == d.
func TestPropertyDiffInvertsCumSumShift(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		d := make(Vector, len(raw))
		for i, x := range raw {
			// Bound magnitudes so float cancellation stays benign.
			d[i] = math.Mod(x, 1000)
			if math.IsNaN(d[i]) || math.IsInf(d[i], 0) {
				d[i] = 1
			}
		}
		s := NewVector(len(d) + 1)
		CumSumShift(s, d)
		back := NewVector(len(d))
		Diff(back, s)
		return back.Equal(d, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCumSumInPlace(t *testing.T) {
	v := Vector{1, 2, 3}
	CumSum(v, v)
	if !v.Equal(Vector{1, 3, 6}, 0) {
		t.Fatalf("in-place CumSum = %v", v)
	}
}

func TestArgSortStable(t *testing.T) {
	v := Vector{2, 1, 2, 0, 1}
	got := v.ArgSort()
	want := []int{3, 1, 4, 0, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ArgSort = %v, want %v", got, want)
		}
	}
}

// Property: ArgSort yields a valid permutation with non-decreasing values.
func TestPropertyArgSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(200)
		v := NewVector(n)
		for i := range v {
			v[i] = math.Floor(rng.Float64() * 10) // ties likely
		}
		p := v.ArgSort()
		seen := make([]bool, n)
		for _, idx := range p {
			if idx < 0 || idx >= n || seen[idx] {
				t.Fatalf("not a permutation: %v", p)
			}
			seen[idx] = true
		}
		for i := 1; i < n; i++ {
			if v[p[i-1]] > v[p[i]] {
				t.Fatalf("not sorted at %d", i)
			}
		}
	}
}

func TestReverse(t *testing.T) {
	v := Vector{1, 2, 3}
	v.Reverse()
	if !v.Equal(Vector{3, 2, 1}, 0) {
		t.Fatalf("Reverse = %v", v)
	}
	w := Vector{1, 2}
	w.Reverse()
	if !w.Equal(Vector{2, 1}, 0) {
		t.Fatalf("Reverse even = %v", w)
	}
}

func TestEqualDifferentLengths(t *testing.T) {
	if (Vector{1}).Equal(Vector{1, 2}, 1) {
		t.Fatal("vectors of different lengths must not be Equal")
	}
}

func TestArgSortIntoMatchesArgSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		v := NewVector(n)
		for i := range v {
			// Coarse values force ties so stability is exercised.
			v[i] = float64(rng.Intn(5))
		}
		want := v.ArgSort()
		idx := make([]int, n)
		buf := make([]int, n)
		got := v.ArgSortInto(idx, buf)
		if len(got) != len(want) {
			t.Fatalf("trial %d: length %d vs %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: ArgSortInto = %v, ArgSort = %v", trial, got, want)
			}
		}
	}
}

func TestArgSortIntoNoAllocs(t *testing.T) {
	v := Vector{3, 1, 2, 1, 5, 0, 4}
	idx := make([]int, len(v))
	buf := make([]int, len(v))
	allocs := testing.AllocsPerRun(50, func() { v.ArgSortInto(idx, buf) })
	if allocs != 0 {
		t.Fatalf("ArgSortInto allocated %v times per run, want 0", allocs)
	}
}

func TestArgSortIntoBadBuffers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ArgSortInto with short buffers must panic")
		}
	}()
	(Vector{1, 2, 3}).ArgSortInto(make([]int, 2), make([]int, 3))
}
