package mat

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64 // len rows*cols, row-major
}

// NewDense returns a zeroed rows×cols matrix. It panics on non-positive
// dimensions so shape bugs surface at construction time.
func NewDense(rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: NewDense invalid shape %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// DenseFromRows builds a matrix from a slice of equal-length rows.
func DenseFromRows(rows [][]float64) *Dense {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("mat: DenseFromRows empty input")
	}
	m := NewDense(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic(fmt.Sprintf("mat: DenseFromRows ragged row %d", i))
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the (i, j) entry.
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the (i, j) entry.
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Add accumulates v onto the (i, j) entry.
func (m *Dense) Add(i, j int, v float64) { m.data[i*m.cols+j] += v }

// Row returns a view (not a copy) of row i.
func (m *Dense) Row(i int) Vector { return Vector(m.data[i*m.cols : (i+1)*m.cols]) }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// MulVec computes dst = m·x. dst must have length m.Rows() and x length
// m.Cols(); dst must not alias x.
func (m *Dense) MulVec(dst, x Vector) Vector {
	if len(x) != m.cols || len(dst) != m.rows {
		panic(fmt.Sprintf("mat: MulVec shape mismatch (%dx%d)·%d -> %d", m.rows, m.cols, len(x), len(dst)))
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, a := range row {
			s += a * x[j]
		}
		dst[i] = s
	}
	return dst
}

// MulVecT computes dst = mᵀ·x. dst must have length m.Cols() and x length
// m.Rows(); dst must not alias x.
func (m *Dense) MulVecT(dst, x Vector) Vector {
	if len(x) != m.rows || len(dst) != m.cols {
		panic("mat: MulVecT shape mismatch")
	}
	dst.Fill(0)
	for i := 0; i < m.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, a := range row {
			dst[j] += a * xi
		}
	}
	return dst
}

// Mul returns the product m·b as a new matrix.
func (m *Dense) Mul(b *Dense) *Dense {
	if m.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul shape mismatch (%dx%d)·(%dx%d)", m.rows, m.cols, b.rows, b.cols))
	}
	out := NewDense(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		arow := m.data[i*m.cols : (i+1)*m.cols]
		orow := out.data[i*b.cols : (i+1)*b.cols]
		for kk, a := range arow {
			if a == 0 {
				continue
			}
			brow := b.data[kk*b.cols : (kk+1)*b.cols]
			for j, bv := range brow {
				orow[j] += a * bv
			}
		}
	}
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	out := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*out.cols+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// Sub returns m - b as a new matrix.
func (m *Dense) Sub(b *Dense) *Dense {
	if m.rows != b.rows || m.cols != b.cols {
		panic("mat: Sub shape mismatch")
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] -= b.data[i]
	}
	return out
}

// ScaleInPlace multiplies every entry by a and returns m.
func (m *Dense) ScaleInPlace(a float64) *Dense {
	for i := range m.data {
		m.data[i] *= a
	}
	return m
}

// RowSums returns the vector of per-row sums.
func (m *Dense) RowSums() Vector {
	out := NewVector(m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.Row(i).Sum()
	}
	return out
}

// IsSymmetric reports whether m is square and symmetric within tol.
func (m *Dense) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// IsRMatrix reports whether the square matrix m satisfies the R-matrix
// property of Atkins et al. (values non-increasing as one moves away from
// the diagonal along each row) within tol, together with symmetry.
func (m *Dense) IsRMatrix(tol float64) bool {
	if !m.IsSymmetric(tol) {
		return false
	}
	n := m.rows
	for j := 0; j < n; j++ {
		// Right of the diagonal: entries must be non-increasing in i.
		for i := j + 1; i+1 < n; i++ {
			if m.At(j, i) < m.At(j, i+1)-tol {
				return false
			}
		}
		// Left of the diagonal: entries must be non-decreasing toward it.
		for i := 0; i+1 <= j-1; i++ {
			if m.At(j, i) > m.At(j, i+1)+tol {
				return false
			}
		}
	}
	return true
}

// PermuteRows returns a new matrix whose row r is m's row perm[r].
func (m *Dense) PermuteRows(perm []int) *Dense {
	if len(perm) != m.rows {
		panic("mat: PermuteRows length mismatch")
	}
	out := NewDense(m.rows, m.cols)
	for r, src := range perm {
		copy(out.data[r*m.cols:(r+1)*m.cols], m.data[src*m.cols:(src+1)*m.cols])
	}
	return out
}

// String renders m with aligned columns for debugging and small examples.
func (m *Dense) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%8.4f", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
