// Package mat provides the dense and sparse linear-algebra primitives the
// rest of the library is built on: vectors, row-major dense matrices and
// compressed-sparse-row (CSR) matrices, together with the operations needed
// by the spectral methods in this repository (mat-vec products, norms,
// row/column normalization, Laplacians).
//
// The package deliberately implements only the subset of numerical linear
// algebra that the HITSnDIFFs reproduction needs, using the standard library
// alone. All matrices index from zero and store float64 entries.
package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimensionMismatch is returned (or wrapped) when operand shapes are
// incompatible.
var ErrDimensionMismatch = errors.New("mat: dimension mismatch")

// Vector is a dense column vector backed by a plain slice.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Ones returns a vector of length n with every entry set to 1.
func Ones(n int) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// Constant returns a vector of length n with every entry set to c.
func Constant(n int, c float64) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = c
	}
	return v
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Dot returns the inner product of v and w. It panics if lengths differ.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(v), len(w)))
	}
	var s float64
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// Norm2 returns the Euclidean (L2) norm of v.
func (v Vector) Norm2() float64 {
	// Scale to avoid overflow for very large entries.
	var maxAbs float64
	for _, x := range v {
		if a := math.Abs(x); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		r := x / maxAbs
		s += r * r
	}
	return maxAbs * math.Sqrt(s)
}

// Norm1 returns the L1 norm (sum of absolute values) of v.
func (v Vector) Norm1() float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// NormInf returns the maximum absolute entry of v.
func (v Vector) NormInf() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Sum returns the sum of the entries of v.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of v, or 0 for an empty vector.
func (v Vector) Mean() float64 {
	if len(v) == 0 {
		return 0
	}
	return v.Sum() / float64(len(v))
}

// Variance returns the population variance of v, or 0 for fewer than two
// entries.
func (v Vector) Variance() float64 {
	if len(v) < 2 {
		return 0
	}
	mu := v.Mean()
	var s float64
	for _, x := range v {
		d := x - mu
		s += d * d
	}
	return s / float64(len(v))
}

// Scale multiplies every entry of v by a in place and returns v.
func (v Vector) Scale(a float64) Vector {
	for i := range v {
		v[i] *= a
	}
	return v
}

// AddScaled sets v = v + a*w in place and returns v. It panics if lengths
// differ.
func (v Vector) AddScaled(a float64, w Vector) Vector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("mat: AddScaled length mismatch %d vs %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += a * w[i]
	}
	return v
}

// AXPBY sets dst[i] = a·x[i] + b·y[i] in one fused pass and returns dst.
// dst may alias x or y. It panics if lengths differ. The spectral shift of
// ABH-power (next ← β·s_diff − next) is one AXPBY instead of a scale plus a
// subtract pass.
func AXPBY(dst Vector, a float64, x Vector, b float64, y Vector) Vector {
	if len(dst) != len(x) || len(dst) != len(y) {
		panic(fmt.Sprintf("mat: AXPBY length mismatch %d, %d, %d", len(dst), len(x), len(y)))
	}
	for i := range dst {
		dst[i] = a*x[i] + b*y[i]
	}
	return dst
}

// FlipInvariantDist returns min(‖a−b‖₂, ‖a+b‖₂), the sign-insensitive
// distance every power-style iteration here uses as its convergence
// measure, computed in a single fused pass over both vectors.
func FlipInvariantDist(a, b Vector) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: FlipInvariantDist length mismatch %d vs %d", len(a), len(b)))
	}
	var same, flip float64
	for i, x := range a {
		d := x - b[i]
		s := x + b[i]
		same += d * d
		flip += s * s
	}
	return math.Sqrt(math.Min(same, flip))
}

// Normalize scales v to unit L2 norm in place and returns the original norm.
// A zero vector is left unchanged and 0 is returned.
func (v Vector) Normalize() float64 {
	n := v.Norm2()
	if n == 0 {
		return 0
	}
	inv := 1 / n
	for i := range v {
		v[i] *= inv
	}
	return n
}

// Fill sets every entry of v to c.
func (v Vector) Fill(c float64) {
	for i := range v {
		v[i] = c
	}
}

// CumSum writes the running prefix sums of src into dst, which must have the
// same length, and returns dst. dst may alias src.
//
// CumSum is the T-matrix application of the paper (s = T·s_diff with the
// leading score fixed to zero) when dst has one more entry than src; use
// CumSumShift for that variant.
func CumSum(dst, src Vector) Vector {
	if len(dst) != len(src) {
		panic("mat: CumSum length mismatch")
	}
	var acc float64
	for i, x := range src {
		acc += x
		dst[i] = acc
	}
	return dst
}

// CumSumShift implements s = T·d for the (m×(m-1)) lower unit triangular
// matrix T from the paper: s[0] = 0 and s[j] = d[0]+...+d[j-1] for j ≥ 1.
// dst must have length len(d)+1.
func CumSumShift(dst, d Vector) Vector {
	if len(dst) != len(d)+1 {
		panic("mat: CumSumShift length mismatch")
	}
	dst[0] = 0
	var acc float64
	for i, x := range d {
		acc += x
		dst[i+1] = acc
	}
	return dst
}

// Diff implements d = S·s for the ((m-1)×m) difference matrix S from the
// paper: d[j] = s[j+1] - s[j]. dst must have length len(s)-1.
func Diff(dst, s Vector) Vector {
	if len(dst) != len(s)-1 {
		panic("mat: Diff length mismatch")
	}
	for i := range dst {
		dst[i] = s[i+1] - s[i]
	}
	return dst
}

// ArgSort returns a permutation p such that v[p[0]] ≤ v[p[1]] ≤ ... .
// The sort is stable with respect to the original indices.
func (v Vector) ArgSort() []int {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	// Insertion-free: use sort.SliceStable semantics via simple merge sort to
	// keep determinism; stdlib sort is fine.
	stableSortByValue(idx, v)
	return idx
}

// ArgSortInto is ArgSort with caller-provided buffers: idx receives the
// permutation and buf is merge scratch; both must have length len(v). The
// ordering is identical to ArgSort (same stable merge), and the call
// performs no allocations — the variant the pooled orientation path of the
// certified warm-update fast path uses.
func (v Vector) ArgSortInto(idx, buf []int) []int {
	if len(idx) != len(v) || len(buf) != len(v) {
		panic(fmt.Sprintf("mat: ArgSortInto buffer length mismatch %d/%d vs %d", len(idx), len(buf), len(v)))
	}
	for i := range idx {
		idx[i] = i
	}
	stableSortByValueBuf(idx, buf, v)
	return idx
}

func stableSortByValue(idx []int, v Vector) {
	if len(idx) < 2 {
		return
	}
	stableSortByValueBuf(idx, make([]int, len(idx)), v)
}

// stableSortByValueBuf is the bottom-up stable merge sort shared by ArgSort
// and ArgSortInto; buf must have the same length as idx.
func stableSortByValueBuf(idx, buf []int, v Vector) {
	n := len(idx)
	if n < 2 {
		return
	}
	for width := 1; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid := lo + width
			hi := lo + 2*width
			if mid > n {
				mid = n
			}
			if hi > n {
				hi = n
			}
			mergeByValue(buf[lo:hi], idx[lo:mid], idx[mid:hi], v)
		}
		copy(idx, buf)
	}
}

func mergeByValue(dst, a, b []int, v Vector) {
	i, j := 0, 0
	for k := range dst {
		switch {
		case i >= len(a):
			dst[k] = b[j]
			j++
		case j >= len(b):
			dst[k] = a[i]
			i++
		case v[b[j]] < v[a[i]]:
			dst[k] = b[j]
			j++
		default:
			dst[k] = a[i]
			i++
		}
	}
}

// Reverse reverses v in place and returns it.
func (v Vector) Reverse() Vector {
	for i, j := 0, len(v)-1; i < j; i, j = i+1, j-1 {
		v[i], v[j] = v[j], v[i]
	}
	return v
}

// Equal reports whether v and w have the same length and all entries within
// tol of each other.
func (v Vector) Equal(w Vector, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > tol {
			return false
		}
	}
	return true
}

// MinMaxNormalized returns a copy of v rescaled to [0, 1] by min-max
// normalization. A flat vector (zero span) maps to 0.5 everywhere — the
// "no signal" midpoint; per-component and per-shard ranking merges share
// this one rule so their score contracts cannot drift apart.
func (v Vector) MinMaxNormalized() Vector {
	out := NewVector(len(v))
	if len(v) == 0 {
		return out
	}
	lo, hi := v[0], v[0]
	for _, x := range v[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi == lo {
		out.Fill(0.5)
		return out
	}
	for i, x := range v {
		out[i] = (x - lo) / (hi - lo)
	}
	return out
}
