package mat

import (
	"math/rand"
	"testing"
)

// csrEqual reports whether two CSR matrices are bitwise identical in shape,
// structure and values.
func csrEqual(a, b *CSR) bool {
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() || a.NNZ() != b.NNZ() {
		return false
	}
	for r := 0; r < a.Rows(); r++ {
		ac, av := a.RowNNZ(r)
		bc, bv := b.RowNNZ(r)
		if len(ac) != len(bc) {
			return false
		}
		for i := range ac {
			if ac[i] != bc[i] || av[i] != bv[i] {
				return false
			}
		}
	}
	return true
}

func TestBlockDiagMatchesDenseConstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	blocks := []*CSR{
		randomCSR(rng, 4, 7, 0.4),
		randomCSR(rng, 1, 3, 0.9),
		randomCSR(rng, 6, 2, 0.3),
		randomCSR(rng, 3, 5, 0), // empty block
	}
	packed := BlockDiag(blocks)

	rows, cols := 0, 0
	var entries []Coord
	for _, b := range blocks {
		for r := 0; r < b.Rows(); r++ {
			bc, bv := b.RowNNZ(r)
			for i := range bc {
				entries = append(entries, Coord{Row: rows + r, Col: cols + bc[i], Val: bv[i]})
			}
		}
		rows += b.Rows()
		cols += b.Cols()
	}
	want := NewCSR(rows, cols, entries)
	if !csrEqual(packed, want) {
		t.Fatal("BlockDiag disagrees with coordinate assembly")
	}
}

// The packed matvec must equal the concatenation of per-block matvecs —
// the property the batched multi-tenant solve rests on.
func TestBlockDiagMulVecIsPerBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	blocks := []*CSR{
		randomCSR(rng, 10, 8, 0.5),
		randomCSR(rng, 7, 12, 0.4),
		randomCSR(rng, 5, 5, 0.6),
	}
	packed := BlockDiag(blocks)
	x := NewVector(packed.Cols())
	for i := range x {
		x[i] = rng.NormFloat64()
	}

	got := NewVector(packed.Rows())
	packed.MulVec(got, x)
	gotT := NewVector(packed.Cols())
	packed.MulVecT(gotT, got)

	rowOff, colOff := 0, 0
	for _, b := range blocks {
		dst := NewVector(b.Rows())
		b.MulVec(dst, x[colOff:colOff+b.Cols()])
		for r, v := range dst {
			if got[rowOff+r] != v {
				t.Fatalf("row %d of block: packed %v, per-block %v", r, got[rowOff+r], v)
			}
		}
		dstT := NewVector(b.Cols())
		b.MulVecT(dstT, got[rowOff:rowOff+b.Rows()])
		for c, v := range dstT {
			if gotT[colOff+c] != v {
				t.Fatalf("col %d of block: packed %v, per-block %v", c, gotT[colOff+c], v)
			}
		}
		rowOff += b.Rows()
		colOff += b.Cols()
	}
}

func TestReplaceRowsMatchesScratchRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	old := randomCSR(rng, 20, 15, 0.3)

	// New contents for a few rows, including an emptied row and a row of a
	// previously empty matrix region.
	repl := map[int][]Coord{
		2:  {{Col: 1, Val: 2}, {Col: 9, Val: -1}},
		7:  {}, // emptied
		8:  {{Col: 0, Val: 5}},
		19: {{Col: 3, Val: 1}, {Col: 4, Val: 1}, {Col: 14, Val: 7}},
	}
	rows := []int{2, 7, 8, 19}
	got := old.ReplaceRows(rows, func(r int, emit func(col int, val float64)) {
		for _, e := range repl[r] {
			emit(e.Col, e.Val)
		}
	})

	var entries []Coord
	for r := 0; r < old.Rows(); r++ {
		if rep, ok := repl[r]; ok {
			for _, e := range rep {
				entries = append(entries, Coord{Row: r, Col: e.Col, Val: e.Val})
			}
			continue
		}
		rc, rv := old.RowNNZ(r)
		for i := range rc {
			entries = append(entries, Coord{Row: r, Col: rc[i], Val: rv[i]})
		}
	}
	want := NewCSR(old.Rows(), old.Cols(), entries)
	if !csrEqual(got, want) {
		t.Fatal("ReplaceRows disagrees with from-scratch assembly")
	}

	// The receiver must be untouched (COW safety).
	if !csrEqual(old, randomCSR(rand.New(rand.NewSource(3)), 20, 15, 0.3)) {
		t.Fatal("ReplaceRows mutated its receiver")
	}
}

func TestReplaceRowsRejectsBadInput(t *testing.T) {
	m := randomCSR(rand.New(rand.NewSource(1)), 5, 5, 0.5)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("unsorted rows", func() {
		m.ReplaceRows([]int{3, 1}, func(int, func(int, float64)) {})
	})
	mustPanic("row out of range", func() {
		m.ReplaceRows([]int{5}, func(int, func(int, float64)) {})
	})
	mustPanic("columns out of order", func() {
		m.ReplaceRows([]int{1}, func(_ int, emit func(int, float64)) {
			emit(3, 1)
			emit(2, 1)
		})
	})
	mustPanic("zero value", func() {
		m.ReplaceRows([]int{1}, func(_ int, emit func(int, float64)) {
			emit(0, 0)
		})
	})
}

// BenchmarkBlockDiag tracks the packing cost of the batched solve path.
func BenchmarkBlockDiag(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	blocks := make([]*CSR, 16)
	for i := range blocks {
		blocks[i] = randomCSR(rng, 120, 300, 0.3)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m := BlockDiag(blocks); m == nil {
			b.Fatal("nil")
		}
	}
}
