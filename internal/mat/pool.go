package mat

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the persistent worker pool behind the parallel
// sparse kernels. Before it existed, every MulVecPar/MulVecTPar/
// MulVecDiagSub call spawned w−1 fresh goroutines (one per chunk) and tore
// them down again — O(workers) scheduler churn and small heap allocations
// per apply, multiplied by thousands of power-iteration steps and, under a
// sharded engine, by the number of shards fanning out concurrently. The
// pool replaces that with long-lived workers fed by per-worker task
// channels: a kernel invocation publishes one reusable run descriptor,
// round-robins its chunk indices onto the worker channels, executes chunk 0
// on the calling goroutine, and waits. In steady state the whole dispatch
// path performs zero heap allocations (see BenchmarkParallelDoPooled and
// the CI zero-alloc guard).
//
// Lifecycle: the pool starts lazily on the first parallel dispatch, sized
// by SetPoolSize (default GOMAXPROCS). Growing starts new workers; shrinking
// only lowers the number of channels dispatch targets — surplus workers
// stay parked on their (empty) channels so a later grow can reuse them and
// no send can ever hit a closed channel. Workers live for the rest of the
// process; an idle worker costs one blocked goroutine and one empty
// channel.

// taskBuffer is the capacity of each worker's task channel. A little slack
// lets a dispatcher enqueue all its chunks without handshaking with every
// worker, and lets several shards' dispatches interleave on the same
// workers without blocking each other at the send.
const taskBuffer = 8

// taskKind selects the kernel body a worker runs for its chunk.
type taskKind uint8

const (
	// taskMulVec sweeps a row chunk of dst = m·x.
	taskMulVec taskKind = iota
	// taskScatterT scatters a row chunk of mᵀ·x into the chunk's private
	// column accumulator.
	taskScatterT
	// taskReduceT sums the per-chunk accumulators into a column chunk of
	// dst (the second phase of MulVecTPar).
	taskReduceT
	// taskDiagSub sweeps a row chunk of the fused dst = diag∘s − m·x.
	taskDiagSub
)

// kernelRun describes one parallel kernel invocation: the operands every
// chunk reads plus the WaitGroup the dispatcher blocks on. Runs are
// recycled through runPool so steady-state dispatch allocates nothing; all
// fields are written by the dispatcher before any task is published and
// are read-only while workers hold the run.
type kernelRun struct {
	kind            taskKind
	m               *CSR
	dst, x, diag, s Vector
	ws              *TScratch
	w               int
	wg              sync.WaitGroup
}

// exec runs chunk k of the kernel this run describes. Chunk boundaries come
// from the pure chunkRow partition, so results never depend on which worker
// executes which chunk.
func (r *kernelRun) exec(k int) {
	switch r.kind {
	case taskMulVec:
		r.m.mulVecRange(r.dst, r.x, r.m.chunkRow(k, r.w), r.m.chunkRow(k+1, r.w))
	case taskScatterT:
		r.m.scatterTRange(r.ws.partials[k], r.x, r.m.chunkRow(k, r.w), r.m.chunkRow(k+1, r.w))
	case taskReduceT:
		reduceColumns(r.dst, r.ws.partials, r.w, k)
	case taskDiagSub:
		r.m.mulVecDiagSubRange(r.dst, r.x, r.diag, r.s, r.m.chunkRow(k, r.w), r.m.chunkRow(k+1, r.w))
	}
}

// runPool recycles run descriptors across kernel invocations.
var runPool = sync.Pool{New: func() any { return new(kernelRun) }}

// runKernel publishes one kernel invocation to the worker pool and waits
// for all w chunks. The caller has already decided w > 1.
func runKernel(kind taskKind, m *CSR, dst, x, diag, s Vector, ws *TScratch, w int) {
	r := runPool.Get().(*kernelRun)
	r.kind, r.m, r.dst, r.x, r.diag, r.s, r.ws, r.w = kind, m, dst, x, diag, s, ws, w
	kernelPool.dispatch(r)
	// Drop the operand references before pooling the run so a parked
	// descriptor never pins a caller's buffers.
	*r = kernelRun{}
	runPool.Put(r)
}

// poolTask pairs a run with the chunk index the receiving worker executes.
type poolTask struct {
	r *kernelRun
	k int
}

// workerPool is the process-wide set of long-lived kernel workers. chans
// holds every worker ever started; active is the prefix of chans that
// dispatch currently targets (see the lifecycle note at the top of the
// file).
type workerPool struct {
	mu     sync.Mutex    // guards growth of chans
	chans  atomic.Value  // []chan poolTask, copy-on-grow
	active atomic.Int64  // how many of chans dispatch may target
	next   atomic.Uint64 // round-robin cursor over active workers
}

// kernelPool is the shared pool all parallel kernels — and therefore all
// engine shards — dispatch through.
var kernelPool workerPool

// SetPoolSize sets the number of persistent worker goroutines the parallel
// sparse kernels share, starting the pool if needed. Passing 0 (or a
// negative value) resolves to runtime.GOMAXPROCS(0). Growing starts new
// workers; shrinking parks the surplus without interrupting in-flight
// kernels. Safe for concurrent use with dispatching kernels.
func SetPoolSize(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	kernelPool.mu.Lock()
	kernelPool.startLocked(n)
	kernelPool.mu.Unlock()
}

// PoolSize returns the number of pool workers dispatch currently targets;
// 0 means the pool has not started yet (it will start, GOMAXPROCS-sized, on
// the first parallel kernel call).
func PoolSize() int { return int(kernelPool.active.Load()) }

// startLocked grows the worker set to at least n goroutines and publishes n
// as the active count. Callers hold p.mu.
func (p *workerPool) startLocked(n int) {
	chans, _ := p.chans.Load().([]chan poolTask)
	if len(chans) < n {
		grown := make([]chan poolTask, len(chans), n)
		copy(grown, chans)
		for len(grown) < n {
			ch := make(chan poolTask, taskBuffer)
			go poolWorker(ch)
			grown = append(grown, ch)
		}
		p.chans.Store(grown)
	}
	p.active.Store(int64(n))
}

// workers returns the channels of the currently active workers, starting
// the pool on first use.
func (p *workerPool) workers() []chan poolTask {
	n := p.active.Load()
	if n == 0 {
		p.mu.Lock()
		if p.active.Load() == 0 {
			p.startLocked(runtime.GOMAXPROCS(0))
		}
		n = p.active.Load()
		p.mu.Unlock()
	}
	return p.chans.Load().([]chan poolTask)[:n]
}

// dispatch fans the w chunks of r out over the pool — chunk 0 runs on the
// calling goroutine, like the old spawn-per-call path — and waits for all
// of them. Chunks are assigned round-robin, so concurrent dispatches (e.g.
// several shards ranking at once) interleave across the same workers; a
// run with more chunks than workers simply queues several chunks on one
// worker. Workers never block inside a chunk, so dispatch cannot deadlock.
func (p *workerPool) dispatch(r *kernelRun) {
	chans := p.workers()
	r.wg.Add(r.w - 1)
	for k := 1; k < r.w; k++ {
		chans[p.next.Add(1)%uint64(len(chans))] <- poolTask{r: r, k: k}
	}
	r.exec(0)
	r.wg.Wait()
}

// poolWorker is the loop of one persistent worker: execute a chunk, signal
// its run, park on the channel.
func poolWorker(ch chan poolTask) {
	for t := range ch {
		t.r.exec(t.k)
		t.r.wg.Done()
	}
}
