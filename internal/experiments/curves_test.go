package experiments

import (
	"math"
	"testing"
)

func TestFig13ScatterShapeAndHalfMoon(t *testing.T) {
	tbl := Fig13Scatter(500, 7)
	if len(tbl.Rows) != 500 {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	// The defining property: difficulty spread is wider among highly
	// discriminating items.
	var hiB, loB []float64
	for i := range tbl.Rows {
		la := tbl.Get(i, "log-a")
		b := tbl.Get(i, "b")
		if la > 0.35 {
			hiB = append(hiB, b)
		} else if la < -0.35 {
			loB = append(loB, b)
		}
	}
	variance := func(xs []float64) float64 {
		var mu float64
		for _, x := range xs {
			mu += x
		}
		mu /= float64(len(xs))
		var v float64
		for _, x := range xs {
			v += (x - mu) * (x - mu)
		}
		return v / float64(len(xs))
	}
	if len(hiB) < 20 || len(loB) < 20 {
		t.Fatalf("split sizes %d/%d", len(hiB), len(loB))
	}
	if variance(hiB) <= variance(loB) {
		t.Fatalf("half-moon shape lost: var hi %v <= var lo %v", variance(hiB), variance(loB))
	}
}

func TestFig8CurvesAgreeBetweenModels(t *testing.T) {
	tbl := Fig8Curves(8, 25)
	if len(tbl.Rows) != 25 {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	for i := range tbl.Rows {
		for opt := 0; opt < 3; opt++ {
			g := tbl.Get(i, "GRM-opt"+string(rune('0'+opt)))
			b := tbl.Get(i, "Bock-opt"+string(rune('0'+opt)))
			if math.Abs(g-b) > 0.15 {
				t.Fatalf("row %d option %d: GRM %v vs Bock %v", i, opt, g, b)
			}
		}
	}
}

func TestFig1CurvesMonotoneAndOrdered(t *testing.T) {
	tbl := Fig1Curves(21)
	if len(tbl.Rows) != 21 {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	// Each item's curve is non-decreasing in θ and easier items dominate.
	for i := 1; i < len(tbl.Rows); i++ {
		for _, item := range []string{"item1", "item2", "item3"} {
			if tbl.Get(i, item) < tbl.Get(i-1, item)-1e-9 {
				t.Fatalf("%s not monotone at row %d", item, i)
			}
		}
	}
	for i := range tbl.Rows {
		if tbl.Get(i, "item1") < tbl.Get(i, "item3")-1e-9 {
			t.Fatalf("easier item not dominating at row %d", i)
		}
	}
}
