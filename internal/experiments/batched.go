package experiments

import (
	"context"
	"fmt"
	"time"

	"hitsndiffs"
	"hitsndiffs/internal/irt"
)

// BatchedConfig tunes the batched multi-tenant ranking sweep.
type BatchedConfig struct {
	// MaxTenants bounds the swept tenant counts (1, 2, 4, ... ≤ MaxTenants).
	MaxTenants int
	// Seed seeds the synthetic tenant workloads and the solves.
	Seed int64
	// Quick shrinks the workload for smoke runs.
	Quick bool
}

// BatchedServing measures multi-tenant ranking latency across tenant
// counts in the steady-state serving pattern (one tenant written, every
// tenant's ranking refreshed): the pre-batching loop of solo cold solves
// against Engine.RankBatch, whose refresh serves the unwritten tenants
// from the per-tenant version cache and re-solves the written one
// warm-started in the packed block-diagonal system. It is the
// experiments-harness twin of BenchmarkBatchedRank.
func BatchedServing(ctx context.Context, cfg BatchedConfig) (*Table, error) {
	users, items, refreshes := 120, 60, 12
	if cfg.Quick {
		users, items, refreshes = 60, 40, 6
	}

	const seqCol, batchCol, speedupCol = "sequential ms/op", "batched ms/op", "speedup"
	t := NewTable("batched-serving",
		fmt.Sprintf("multi-tenant write+refresh latency, %dx%d per tenant", users, items),
		"tenants", "latency", []string{seqCol, batchCol, speedupCol})

	max := cfg.MaxTenants
	if max < 1 {
		max = 1
	}
	for n := 1; n <= max; n *= 2 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		tenants := make([]*hitsndiffs.ResponseMatrix, n)
		for i := range tenants {
			gen := irt.DefaultConfig(irt.ModelSamejima)
			gen.Users, gen.Items, gen.Seed = users, items, cfg.Seed+int64(i)
			gen.DiscriminationMax = 2
			d, err := irt.Generate(gen)
			if err != nil {
				return nil, err
			}
			tenants[i] = d.Responses
		}
		write := func(m *hitsndiffs.ResponseMatrix, i int) {
			item := i % m.Items()
			m.SetAnswer(i%m.Users(), item, i%m.OptionCount(item))
		}

		start := time.Now()
		for i := 0; i < refreshes; i++ {
			write(tenants[i%n], i)
			for _, m := range tenants {
				if _, err := hitsndiffs.HND(hitsndiffs.WithSeed(cfg.Seed)).Rank(ctx, m); err != nil {
					return nil, err
				}
			}
		}
		seqMS := time.Since(start).Seconds() * 1e3 / float64(refreshes)

		eng, err := hitsndiffs.NewEngine(hitsndiffs.NewResponseMatrix(2, 1, 2),
			hitsndiffs.WithRankOptions(hitsndiffs.WithSeed(cfg.Seed)))
		if err != nil {
			return nil, err
		}
		if _, err := eng.RankBatch(ctx, tenants); err != nil { // common cold start
			return nil, err
		}
		start = time.Now()
		for i := 0; i < refreshes; i++ {
			write(tenants[i%n], i)
			if _, err := eng.RankBatch(ctx, tenants); err != nil {
				return nil, err
			}
		}
		batchMS := time.Since(start).Seconds() * 1e3 / float64(refreshes)

		t.AddRow(float64(n), map[string]float64{
			seqCol:     seqMS,
			batchCol:   batchMS,
			speedupCol: seqMS / batchMS,
		})
	}
	return t, nil
}
