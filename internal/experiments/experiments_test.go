package experiments

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"hitsndiffs/internal/irt"
)

func quickCfg() Config { return Config{Reps: 1, Seed: 2, Quick: true} }

func TestTableRenderAndCSV(t *testing.T) {
	tbl := NewTable("demo", "Demo", "x", "y", []string{"A", "B"})
	tbl.AddRow(1, map[string]float64{"A": 0.5, "B": math.NaN()})
	tbl.AddRowText(2, "two", map[string]float64{"A": 1})
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "0.5000", "two", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines %d", len(lines))
	}
	if lines[0] != "x,A,B" {
		t.Fatalf("csv header %q", lines[0])
	}
}

func TestTableHelpers(t *testing.T) {
	tbl := NewTable("demo", "Demo", "x", "y", []string{"A", "B"})
	tbl.AddRow(1, map[string]float64{"A": 0.2, "B": 0.9})
	tbl.AddRow(2, map[string]float64{"A": 0.4, "B": math.NaN()})
	if w := tbl.Winner(0); w != "B" {
		t.Fatalf("Winner = %q", w)
	}
	if w := tbl.Winner(1); w != "A" {
		t.Fatalf("Winner row1 = %q", w)
	}
	if got := tbl.MeanOf("A"); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("MeanOf(A) = %v", got)
	}
	if got := tbl.MeanOf("B"); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("MeanOf(B) = %v", got)
	}
	if !math.IsNaN(tbl.Get(1, "B")) || tbl.Get(0, "A") != 0.2 {
		t.Fatal("Get wrong")
	}
}

func TestFig4VaryQuestionsShape(t *testing.T) {
	tbl, err := Fig4VaryQuestions(context.Background(), irt.ModelSamejima, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("quick sweep rows %d", len(tbl.Rows))
	}
	// HnD should be competitive: mean accuracy above 0.5 on Samejima.
	if got := tbl.MeanOf("HnD"); got < 0.5 {
		t.Fatalf("HnD mean accuracy %v", got)
	}
	// Accuracy should not degrade with more questions: last ≥ first − 0.1.
	if tbl.Get(len(tbl.Rows)-1, "HnD") < tbl.Get(0, "HnD")-0.1 {
		t.Fatal("HnD accuracy degrades with more questions")
	}
}

func TestFig4C1PHnDAndABHPerfect(t *testing.T) {
	tbl, err := Fig4C1P(context.Background(), quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := range tbl.Rows {
		for _, m := range []string{"HnD", "ABH", "BL"} {
			if got := tbl.Get(i, m); got < 0.97 {
				t.Errorf("%s row %d accuracy %v on C1P data", m, i, got)
			}
		}
	}
}

func TestFig4VaryOptionsGRMUsesKAtLeast3(t *testing.T) {
	tbl, err := Fig4VaryOptions(context.Background(), irt.ModelGRM, Config{Reps: 1, Seed: 3, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows[0].X != 3 {
		t.Fatalf("GRM option sweep starts at %v", tbl.Rows[0].X)
	}
}

func TestFig4VaryDifficultyXAxisIsAccuracy(t *testing.T) {
	tbl, err := Fig4VaryDifficulty(context.Background(), irt.ModelSamejima, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 7 {
		t.Fatalf("rows %d, want 7 windows", len(tbl.Rows))
	}
	// Harder windows (later rows) must have lower mean user accuracy.
	if tbl.Rows[0].X <= tbl.Rows[len(tbl.Rows)-1].X {
		t.Fatalf("difficulty shift did not reduce accuracy: %v -> %v",
			tbl.Rows[0].X, tbl.Rows[len(tbl.Rows)-1].X)
	}
}

func TestFig4VaryAnswerProb(t *testing.T) {
	tbl, err := Fig4VaryAnswerProb(context.Background(), irt.ModelSamejima, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	if got := tbl.MeanOf("HnD"); got < 0.4 {
		t.Fatalf("HnD mean %v under missing answers", got)
	}
}

func TestFig5ScaleUsersShapes(t *testing.T) {
	tbl, err := Fig5ScaleUsers(context.Background(), TimingConfig{Runs: 1, Seed: 2, Quick: true, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	// HnD-Power must have a measurement everywhere.
	for i := range tbl.Rows {
		if math.IsNaN(tbl.Get(i, "HnD-Power")) {
			t.Fatalf("HnD-Power missing at row %d", i)
		}
	}
}

func TestFig6StabilityShapesAndDirection(t *testing.T) {
	res, err := Fig6Stability(context.Background(), Config{Reps: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Variance.Rows) != 5 || len(res.Accuracy.Rows) != 5 {
		t.Fatal("stability sweep should have 5 discrimination points")
	}
	// Section III-E's claim: HND's eigenvector variance stays below ABH's.
	hLower := 0
	for i := range res.Variance.Rows {
		if res.Variance.Get(i, "HnD") < res.Variance.Get(i, "ABH") {
			hLower++
		}
	}
	if hLower < 3 {
		t.Errorf("HnD variance lower at only %d/5 points", hLower)
	}
	// At the highest discrimination both methods should rank well.
	last := len(res.Accuracy.Rows) - 1
	if res.Accuracy.Get(last, "HnD") < 0.9 {
		t.Errorf("HnD accuracy %v at a=16", res.Accuracy.Get(last, "HnD"))
	}
}

func TestFig7RealWorldShapes(t *testing.T) {
	per, avg, err := Fig7RealWorld(context.Background(), Config{Reps: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(per.Rows) != 6 {
		t.Fatalf("per-dataset rows %d", len(per.Rows))
	}
	if len(avg.Rows) != 1 {
		t.Fatalf("average rows %d", len(avg.Rows))
	}
	// Correlations are percentages.
	if v := avg.Get(0, "HnD"); math.IsNaN(v) || v < -100 || v > 100 {
		t.Fatalf("HnD average %v", v)
	}
}

func TestFig12Shapes(t *testing.T) {
	mean, std, err := Fig12AmericanExperience(context.Background(), Config{Reps: 2, Seed: 3, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(mean.Rows) != 2 || len(std.Rows) != 2 {
		t.Fatal("Fig12 should have two cohort sizes")
	}
	// Figure 12's qualitative takeaway: HnD within a few points of the
	// cheating True-answer baseline.
	if mean.Get(0, "HnD") < mean.Get(0, "True-answer")-15 {
		t.Errorf("HnD %v far below True-answer %v", mean.Get(0, "HnD"), mean.Get(0, "True-answer"))
	}
}

func TestFig13Shapes(t *testing.T) {
	mean, _, err := Fig13HalfMoon(context.Background(), Config{Reps: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(mean.Rows) != 1 {
		t.Fatal("Fig13 should have one row")
	}
	// Figure 13's takeaway: HnD strong (≥85%) and well above TF.
	if mean.Get(0, "HnD") < 80 {
		t.Errorf("HnD half-moon accuracy %v", mean.Get(0, "HnD"))
	}
	if mean.Get(0, "HnD") <= mean.Get(0, "TF") {
		t.Errorf("HnD %v not above TruthFinder %v", mean.Get(0, "HnD"), mean.Get(0, "TF"))
	}
}

func TestFig14BetaMonotone(t *testing.T) {
	tbl, err := Fig14Beta(context.Background(), Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Figure 14a: iterations grow with β.
	first := tbl.Get(0, "ABH-Power")
	last := tbl.Get(len(tbl.Rows)-1, "ABH-Power")
	if last <= first {
		t.Fatalf("iterations did not grow with β: %v -> %v", first, last)
	}
}

func TestFig14IterationsShapes(t *testing.T) {
	tbl, err := Fig14Iterations(context.Background(), Config{Seed: 3, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	for i := range tbl.Rows {
		for _, m := range []string{"ABH-Power", "HnD-Power", "HnD-Deflation"} {
			if v := tbl.Get(i, m); math.IsNaN(v) || v < 1 {
				t.Fatalf("%s row %d iterations %v", m, i, v)
			}
		}
	}
}

func TestMedian(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("median odd = %v", got)
	}
	if got := median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("median even = %v", got)
	}
	if !math.IsNaN(median(nil)) {
		t.Fatal("median of empty should be NaN")
	}
}
