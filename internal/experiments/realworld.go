package experiments

import (
	"context"
	"math"

	"hitsndiffs/internal/core"
	"hitsndiffs/internal/dataset"
	"hitsndiffs/internal/rank"
	"hitsndiffs/internal/truth"
)

// realWorldMethods is the method list of Figure 7/11 (no cheating
// baselines: True-answer serves as the reference ranking instead).
func realWorldMethods() []core.Ranker {
	return rankersByName("HnD-power", "ABH-power", "HITS", "TruthFinder", "Invest", "PooledInv")
}

// RealWorldMethodNames is the legend of Figures 7 and 11.
func RealWorldMethodNames() []string {
	return []string{"HnD", "ABH", "HITS", "TF", "Inv", "PooledInv"}
}

func realWorldDisplayName(r core.Ranker) string {
	switch r.Name() {
	case "HnD-power":
		return "HnD"
	case "ABH-power":
		return "ABH"
	case "TruthFinder":
		return "TF"
	case "Invest":
		return "Inv"
	default:
		return r.Name()
	}
}

// Fig7RealWorld reproduces Figures 7 and 11 on the simulated stand-ins for
// the six real MCQ datasets: each method's ranking is correlated against
// the "True-answer" reference ranking (the paper's approximate gold
// standard), reported as a percentage. The returned tables are one per
// dataset (Figure 11) plus an "Average" row table (Figure 7).
func Fig7RealWorld(ctx context.Context, cfg Config) (perDataset *Table, average *Table, err error) {
	cfg.defaults()
	methods := RealWorldMethodNames()
	perDataset = NewTable("fig11-real-world", "Correlation with True-answer per dataset (simulated stand-ins)",
		"dataset", "correlation-%", methods)
	average = NewTable("fig7-real-world-avg", "Average correlation with True-answer (simulated stand-ins)",
		"aggregate", "correlation-%", methods)

	sums := map[string]float64{}
	counts := map[string]int{}
	for di, spec := range dataset.RealWorldSpecs {
		var acc []map[string]float64
		for r := 0; r < cfg.Reps; r++ {
			d, err := dataset.SimulatedRealWorld(spec, cfg.Seed+int64(r)*131+int64(di))
			if err != nil {
				return nil, nil, err
			}
			ref, err := (truth.TrueAnswer{Correct: d.Correct}).Rank(ctx, d.Responses)
			if err != nil {
				return nil, nil, err
			}
			sample := make(map[string]float64)
			for _, m := range realWorldMethods() {
				res, err := m.Rank(ctx, d.Responses)
				name := realWorldDisplayName(m)
				if err != nil {
					sample[name] = math.NaN()
					continue
				}
				rho := rank.Spearman(res.Scores, ref.Scores)
				// The paper reports |ρ| for ABH on two datasets (footnote
				// 16); mirror that presentation.
				if name == "ABH" {
					rho = math.Abs(rho)
				}
				sample[name] = 100 * rho
			}
			acc = append(acc, sample)
		}
		avg := averageOf(acc)
		perDataset.AddRowText(float64(di), spec.Name, avg)
		for k, v := range avg {
			if !math.IsNaN(v) {
				sums[k] += v
				counts[k]++
			}
		}
	}
	final := make(map[string]float64, len(sums))
	for k, s := range sums {
		final[k] = s / float64(counts[k])
	}
	average.AddRowText(0, "mean-of-6", final)
	return perDataset, average, nil
}

func averageOf(samples []map[string]float64) map[string]float64 {
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, s := range samples {
		for k, v := range s {
			if !math.IsNaN(v) {
				sums[k] += v
				counts[k]++
			}
		}
	}
	out := make(map[string]float64, len(sums))
	for k, s := range sums {
		out[k] = s / float64(counts[k])
	}
	return out
}
