// Package experiments reproduces every table and figure of the paper's
// evaluation: the accuracy sweeps of Figure 4, the scalability curves of
// Figure 5, the stability analysis of Figure 6, the (simulated) real-world
// comparison of Figures 7/11, the supplementary sweeps of Figure 9, the
// American-Experience and half-moon simulations of Figures 12/13, and the
// ABH-power diagnostics of Figure 14. Each experiment returns a Table whose
// rows mirror the series the paper plots.
package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Table is one figure's worth of results: an x-axis sweep with one series
// per method.
type Table struct {
	// Name identifies the experiment (e.g. "fig4a-grm-vs-n").
	Name string
	// Title is the human-readable caption.
	Title string
	// XLabel and YLabel name the axes.
	XLabel, YLabel string
	// Methods fixes the series order.
	Methods []string
	// Rows holds one entry per swept x value.
	Rows []Row
}

// Row is one x position with the per-method measurements. Missing values
// (method timed out / not run) are NaN.
type Row struct {
	X      float64
	XText  string // optional display override for X
	Values map[string]float64
}

// NewTable allocates a table with the given series.
func NewTable(name, title, xlabel, ylabel string, methods []string) *Table {
	return &Table{
		Name:    name,
		Title:   title,
		XLabel:  xlabel,
		YLabel:  ylabel,
		Methods: append([]string(nil), methods...),
	}
}

// AddRow appends a measurement row.
func (t *Table) AddRow(x float64, values map[string]float64) {
	t.Rows = append(t.Rows, Row{X: x, Values: values})
}

// AddRowText appends a row with an explicit x display string.
func (t *Table) AddRowText(x float64, text string, values map[string]float64) {
	t.Rows = append(t.Rows, Row{X: x, XText: text, Values: values})
}

// Get returns the value for a method at row i (NaN when absent).
func (t *Table) Get(i int, method string) float64 {
	if v, ok := t.Rows[i].Values[method]; ok {
		return v
	}
	return math.NaN()
}

// Render writes an aligned ASCII table, the library's stand-in for the
// paper's plots.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s — %s\n", t.Name, t.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "# x: %s   y: %s\n", t.XLabel, t.YLabel); err != nil {
		return err
	}
	header := append([]string{t.XLabel}, t.Methods...)
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	cells := make([][]string, len(t.Rows))
	for r, row := range t.Rows {
		line := make([]string, len(header))
		if row.XText != "" {
			line[0] = row.XText
		} else {
			line[0] = trimFloat(row.X)
		}
		for c, m := range t.Methods {
			v, ok := row.Values[m]
			switch {
			case !ok || math.IsNaN(v):
				line[c+1] = "-"
			default:
				line[c+1] = fmt.Sprintf("%.4f", v)
			}
		}
		for i, cell := range line {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
		cells[r] = line
	}
	writeLine := func(parts []string) error {
		var b strings.Builder
		for i, p := range parts {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], p)
		}
		b.WriteByte('\n')
		_, err := io.WriteString(w, b.String())
		return err
	}
	if err := writeLine(header); err != nil {
		return err
	}
	for _, line := range cells {
		if err := writeLine(line); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV writes the table as CSV with the x column first.
func (t *Table) WriteCSV(w io.Writer) error {
	cols := append([]string{t.XLabel}, t.Methods...)
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		parts := make([]string, 0, len(cols))
		if row.XText != "" {
			parts = append(parts, row.XText)
		} else {
			parts = append(parts, trimFloat(row.X))
		}
		for _, m := range t.Methods {
			v, ok := row.Values[m]
			if !ok || math.IsNaN(v) {
				parts = append(parts, "")
			} else {
				parts = append(parts, fmt.Sprintf("%g", v))
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(parts, ",")); err != nil {
			return err
		}
	}
	return nil
}

func trimFloat(x float64) string {
	if x == math.Trunc(x) && math.Abs(x) < 1e15 {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}

// Winner returns the best method at row i (largest value), breaking ties
// alphabetically for determinism.
func (t *Table) Winner(i int) string {
	best, bestV := "", math.Inf(-1)
	methods := append([]string(nil), t.Methods...)
	sort.Strings(methods)
	for _, m := range methods {
		if v, ok := t.Rows[i].Values[m]; ok && !math.IsNaN(v) && v > bestV {
			best, bestV = m, v
		}
	}
	return best
}

// MeanOf returns the mean of a method's values across rows, ignoring NaNs.
func (t *Table) MeanOf(method string) float64 {
	var s float64
	var n int
	for _, row := range t.Rows {
		if v, ok := row.Values[method]; ok && !math.IsNaN(v) {
			s += v
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return s / float64(n)
}
