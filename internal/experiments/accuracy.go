package experiments

import (
	"context"
	"fmt"
	"math"
	"sync"

	"hitsndiffs"
	"hitsndiffs/internal/c1p"
	"hitsndiffs/internal/core"
	"hitsndiffs/internal/grmest"
	"hitsndiffs/internal/irt"
	"hitsndiffs/internal/rank"
	"hitsndiffs/internal/truth"
)

// rankersByName resolves method names through the public registry, so the
// experiments harness exercises the same construction path as the CLIs.
// The names are built-ins; a resolution failure is a programming error.
func rankersByName(names ...string) []core.Ranker {
	out := make([]core.Ranker, 0, len(names))
	for _, n := range names {
		r, err := hitsndiffs.New(n)
		if err != nil {
			panic(err)
		}
		out = append(out, r)
	}
	return out
}

// Config controls an experiment run.
type Config struct {
	// Reps is the number of repetitions averaged per data point
	// (paper-style smoothing). Default 3.
	Reps int
	// Seed drives dataset generation; repetition r uses Seed+r.
	Seed int64
	// Quick trims the most expensive sweep points (large n/m and the
	// GRM-estimator beyond small sizes) so the full suite stays fast.
	Quick bool
}

func (c *Config) defaults() {
	if c.Reps <= 0 {
		c.Reps = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// methodSet builds the paper's Figure 4 competitor list. The GRM-estimator
// is included only when includeGRM (it is orders of magnitude slower and,
// per the paper's footnote, fails at large question counts).
func methodSet(correct []int, includeGRM bool) []core.Ranker {
	ms := rankersByName("ABH-power", "HnD-power", "HITS", "TruthFinder", "Invest", "PooledInv")
	ms = append(ms, truth.TrueAnswer{Correct: correct})
	if includeGRM {
		ms = append(ms, grmest.Estimator{})
	}
	return ms
}

// displayName maps ranker names to the paper's figure legend.
func displayName(r core.Ranker) string {
	switch r.Name() {
	case "ABH-power":
		return "ABH"
	case "HnD-power":
		return "HnD"
	case "Invest":
		return "Invest"
	case "PooledInv":
		return "PooledInv"
	default:
		return r.Name()
	}
}

// MethodNames returns the legend order of the Figure 4 plots.
func MethodNames(includeGRM bool) []string {
	names := []string{"ABH", "HnD", "HITS", "TruthFinder", "Invest", "PooledInv", "True-Answer"}
	if includeGRM {
		names = append(names, "GRM-estimator")
	}
	return names
}

// evaluate runs every method on the dataset concurrently (all rankers are
// pure readers of the response matrix) and returns Spearman accuracy
// against the true abilities. Failed methods yield NaN.
func evaluate(ctx context.Context, d *irt.Dataset, methods []core.Ranker) map[string]float64 {
	type slot struct {
		name string
		rho  float64
	}
	results := make([]slot, len(methods))
	var wg sync.WaitGroup
	for idx, r := range methods {
		wg.Add(1)
		go func(idx int, r core.Ranker) {
			defer wg.Done()
			res, err := r.Rank(ctx, d.Responses)
			if err != nil {
				results[idx] = slot{displayName(r), math.NaN()}
				return
			}
			results[idx] = slot{displayName(r), rank.Spearman(res.Scores, d.Abilities)}
		}(idx, r)
	}
	wg.Wait()
	out := make(map[string]float64, len(methods))
	for _, s := range results {
		out[s.name] = s.rho
	}
	return out
}

// average accumulates per-method means across repetition maps, skipping
// NaNs.
func average(samples []map[string]float64) map[string]float64 {
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, s := range samples {
		for k, v := range s {
			if !math.IsNaN(v) {
				sums[k] += v
				counts[k]++
			}
		}
	}
	out := make(map[string]float64, len(sums))
	for k, s := range sums {
		out[k] = s / float64(counts[k])
	}
	return out
}

// questionSweep returns the paper's n-axis {25..1600}, trimmed under Quick.
func questionSweep(quick bool) []int {
	if quick {
		return []int{25, 50, 100, 200}
	}
	return []int{25, 50, 100, 200, 400, 800, 1600}
}

// Fig4VaryQuestions reproduces Figures 4a–4c: ranking accuracy as a
// function of the number of questions for the given generative model.
func Fig4VaryQuestions(ctx context.Context, model irt.ModelKind, cfg Config) (*Table, error) {
	cfg.defaults()
	name := fmt.Sprintf("fig4-%s-vs-n", model)
	t := NewTable(name, fmt.Sprintf("Accuracy vs number of questions (%s)", model),
		"questions", "spearman", MethodNames(true))
	for _, n := range questionSweep(cfg.Quick) {
		includeGRM := model == irt.ModelGRM && n <= 200 // paper footnote 12
		var samples []map[string]float64
		for r := 0; r < cfg.Reps; r++ {
			gen := irt.DefaultConfig(model)
			gen.Items = n
			gen.Seed = cfg.Seed + int64(r)*1000 + int64(n)
			d, err := irt.Generate(gen)
			if err != nil {
				return nil, err
			}
			samples = append(samples, evaluate(ctx, d, methodSet(d.Correct, includeGRM)))
		}
		t.AddRow(float64(n), average(samples))
	}
	return t, nil
}

// Fig4VaryUsers reproduces Figure 4d (and 9a/9e for other models).
func Fig4VaryUsers(ctx context.Context, model irt.ModelKind, cfg Config) (*Table, error) {
	cfg.defaults()
	sweep := []int{25, 50, 100, 200, 400, 800, 1600}
	if cfg.Quick {
		sweep = []int{25, 50, 100, 200}
	}
	t := NewTable(fmt.Sprintf("fig4-%s-vs-m", model),
		fmt.Sprintf("Accuracy vs number of users (%s)", model),
		"users", "spearman", MethodNames(true))
	for _, m := range sweep {
		includeGRM := model == irt.ModelGRM && m <= 200
		var samples []map[string]float64
		for r := 0; r < cfg.Reps; r++ {
			gen := irt.DefaultConfig(model)
			gen.Users = m
			gen.Seed = cfg.Seed + int64(r)*1000 + int64(m)
			d, err := irt.Generate(gen)
			if err != nil {
				return nil, err
			}
			samples = append(samples, evaluate(ctx, d, methodSet(d.Correct, includeGRM)))
		}
		t.AddRow(float64(m), average(samples))
	}
	return t, nil
}

// Fig4VaryOptions reproduces Figure 4e (and 9b/9f): accuracy vs the number
// of options k.
func Fig4VaryOptions(ctx context.Context, model irt.ModelKind, cfg Config) (*Table, error) {
	cfg.defaults()
	sweep := []int{2, 3, 4, 5, 6}
	if model == irt.ModelGRM {
		sweep = []int{3, 4, 5, 6, 7} // GRM generation needs k ≥ 3
	}
	t := NewTable(fmt.Sprintf("fig4-%s-vs-k", model),
		fmt.Sprintf("Accuracy vs number of options (%s)", model),
		"options", "spearman", MethodNames(true))
	for _, k := range sweep {
		includeGRM := model == irt.ModelGRM
		var samples []map[string]float64
		for r := 0; r < cfg.Reps; r++ {
			gen := irt.DefaultConfig(model)
			gen.Options = k
			gen.Seed = cfg.Seed + int64(r)*1000 + int64(k)
			d, err := irt.Generate(gen)
			if err != nil {
				return nil, err
			}
			samples = append(samples, evaluate(ctx, d, methodSet(d.Correct, includeGRM)))
		}
		t.AddRow(float64(k), average(samples))
	}
	return t, nil
}

// Fig4VaryDifficulty reproduces Figure 4f (and 9c/9g): the difficulty range
// is shifted through seven windows; the x axis reports the measured average
// user accuracy, as in the paper.
func Fig4VaryDifficulty(ctx context.Context, model irt.ModelKind, cfg Config) (*Table, error) {
	cfg.defaults()
	windows := [][2]float64{
		{-1, 0}, {-0.75, 0.25}, {-0.5, 0.5}, {-0.25, 0.75}, {0, 1}, {0.25, 1.25}, {0.5, 1.5},
	}
	t := NewTable(fmt.Sprintf("fig4-%s-vs-difficulty", model),
		fmt.Sprintf("Accuracy vs question difficulty (%s)", model),
		"mean-user-accuracy-%", "spearman", MethodNames(true))
	for wi, w := range windows {
		var samples []map[string]float64
		var meanAcc float64
		for r := 0; r < cfg.Reps; r++ {
			gen := irt.DefaultConfig(model)
			gen.DifficultyLow, gen.DifficultyHigh = w[0], w[1]
			gen.Seed = cfg.Seed + int64(r)*1000 + int64(wi)
			d, err := irt.Generate(gen)
			if err != nil {
				return nil, err
			}
			meanAcc += irt.MeanUserAccuracy(d)
			samples = append(samples, evaluate(ctx, d, methodSet(d.Correct, model == irt.ModelGRM)))
		}
		meanAcc /= float64(cfg.Reps)
		t.AddRow(math.Round(meanAcc*1000)/10, average(samples))
	}
	return t, nil
}

// Fig4VaryAnswerProb reproduces Figure 4g (and 9d/9h): accuracy when each
// question is answered only with probability p.
func Fig4VaryAnswerProb(ctx context.Context, model irt.ModelKind, cfg Config) (*Table, error) {
	cfg.defaults()
	t := NewTable(fmt.Sprintf("fig4-%s-vs-p", model),
		fmt.Sprintf("Accuracy vs answer probability (%s)", model),
		"answer-probability", "spearman", MethodNames(true))
	for pi, p := range []float64{0.6, 0.7, 0.8, 0.9, 1.0} {
		var samples []map[string]float64
		for r := 0; r < cfg.Reps; r++ {
			gen := irt.DefaultConfig(model)
			gen.AnswerProb = p
			gen.Seed = cfg.Seed + int64(r)*1000 + int64(pi)
			d, err := irt.Generate(gen)
			if err != nil {
				return nil, err
			}
			samples = append(samples, evaluate(ctx, d, methodSet(d.Correct, model == irt.ModelGRM)))
		}
		t.AddRow(p, average(samples))
	}
	return t, nil
}

// Fig4C1P reproduces Figure 4h: consistent (pre-P) response matrices, on
// which only HND and ABH recover the exact ranking. BL is added as the
// combinatorial reference.
func Fig4C1P(ctx context.Context, cfg Config) (*Table, error) {
	cfg.defaults()
	methods := MethodNames(false)
	methods = append(methods, "BL")
	t := NewTable("fig4h-c1p", "Accuracy vs questions on consistent (C1P) data",
		"questions", "spearman", methods)
	for _, n := range questionSweep(cfg.Quick) {
		var samples []map[string]float64
		for r := 0; r < cfg.Reps; r++ {
			gen := irt.DefaultConfig(irt.ModelGRM)
			gen.Items = n
			gen.Seed = cfg.Seed + int64(r)*1000 + int64(n)
			d, err := irt.GenerateC1P(gen)
			if err != nil {
				return nil, err
			}
			ms := methodSet(d.Correct, false)
			sample := evaluate(ctx, d, ms)
			if res, err := (c1p.BL{}).Rank(ctx, d.Responses); err == nil {
				sample["BL"] = rank.Spearman(res.Scores, d.Abilities)
			} else {
				sample["BL"] = math.NaN()
			}
			samples = append(samples, sample)
		}
		t.AddRow(float64(n), average(samples))
	}
	return t, nil
}

// Fig4VaryDiscrimination reproduces Figures 9i–9k: accuracy as a function
// of the discrimination bound a_max.
func Fig4VaryDiscrimination(ctx context.Context, model irt.ModelKind, cfg Config) (*Table, error) {
	cfg.defaults()
	t := NewTable(fmt.Sprintf("fig9-%s-vs-a", model),
		fmt.Sprintf("Accuracy vs question discrimination (%s)", model),
		"a-max", "spearman", MethodNames(true))
	for _, amax := range []float64{2.5, 5, 10, 20, 40} {
		var samples []map[string]float64
		for r := 0; r < cfg.Reps; r++ {
			gen := irt.DefaultConfig(model)
			gen.DiscriminationMax = amax
			gen.Seed = cfg.Seed + int64(r)*1000 + int64(amax)
			d, err := irt.Generate(gen)
			if err != nil {
				return nil, err
			}
			samples = append(samples, evaluate(ctx, d, methodSet(d.Correct, model == irt.ModelGRM)))
		}
		t.AddRow(amax, average(samples))
	}
	return t, nil
}
