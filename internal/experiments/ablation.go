package experiments

import (
	"context"

	"hitsndiffs/internal/core"
	"hitsndiffs/internal/irt"
	"hitsndiffs/internal/rank"
)

// AblationOrientation measures the decile entropy symmetry-breaking
// heuristic (paper Section III-D) in isolation: across repeated datasets,
// how often does the oriented HND ranking point the right way, and how much
// accuracy does orientation recover compared to the raw spectral sign?
// Columns: correct-orientation rate, mean signed ρ with orientation, mean
// signed ρ of the raw (sign-arbitrary) output.
func AblationOrientation(ctx context.Context, cfg Config) (*Table, error) {
	cfg.defaults()
	methods := []string{"correct-rate", "oriented-rho", "raw-rho"}
	t := NewTable("ablation-orientation", "Decile entropy symmetry breaking vs raw spectral sign",
		"discrimination", "value", methods)
	for _, amax := range []float64{2.5, 5, 10, 20, 40} {
		var correct, orientedRho, rawRho float64
		n := 0
		for r := 0; r < cfg.Reps*3; r++ { // cheap experiment: more reps
			gen := irt.DefaultConfig(irt.ModelSamejima)
			gen.DiscriminationMax = amax
			gen.Seed = cfg.Seed + int64(r)*271 + int64(amax*7)
			d, err := irt.Generate(gen)
			if err != nil {
				return nil, err
			}
			oriented, err := (core.HNDPower{Opts: core.Options{Seed: gen.Seed}}).Rank(ctx, d.Responses)
			if err != nil {
				return nil, err
			}
			raw, err := (core.HNDPower{Opts: core.Options{Seed: gen.Seed, SkipOrientation: true}}).Rank(ctx, d.Responses)
			if err != nil {
				return nil, err
			}
			or := rank.Spearman(oriented.Scores, d.Abilities)
			rr := rank.Spearman(raw.Scores, d.Abilities)
			if or >= 0 {
				correct++
			}
			orientedRho += or
			rawRho += rr
			n++
		}
		t.AddRow(amax, map[string]float64{
			"correct-rate": correct / float64(n),
			"oriented-rho": orientedRho / float64(n),
			"raw-rho":      rawRho / float64(n),
		})
	}
	return t, nil
}

// AblationConvergenceTol sweeps the convergence tolerance of HND-power and
// reports accuracy and iteration count — quantifying the paper's 1e-5
// default.
func AblationConvergenceTol(ctx context.Context, cfg Config) (*Table, error) {
	cfg.defaults()
	t := NewTable("ablation-tolerance", "HnD-power accuracy and iterations vs convergence tolerance",
		"tolerance", "value", []string{"rho", "iterations"})
	for _, tol := range []float64{1e-1, 1e-2, 1e-3, 1e-5, 1e-8} {
		var rho, iters float64
		for r := 0; r < cfg.Reps; r++ {
			gen := irt.DefaultConfig(irt.ModelSamejima)
			gen.Seed = cfg.Seed + int64(r)*31
			d, err := irt.Generate(gen)
			if err != nil {
				return nil, err
			}
			res, err := (core.HNDPower{Opts: core.Options{Tol: tol}}).Rank(ctx, d.Responses)
			if err != nil {
				return nil, err
			}
			rho += rank.Spearman(res.Scores, d.Abilities)
			iters += float64(res.Iterations)
		}
		t.AddRow(tol, map[string]float64{
			"rho":        rho / float64(cfg.Reps),
			"iterations": iters / float64(cfg.Reps),
		})
	}
	return t, nil
}
