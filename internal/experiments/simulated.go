package experiments

import (
	"context"
	"math"

	"hitsndiffs/internal/core"
	"hitsndiffs/internal/dataset"
	"hitsndiffs/internal/grmest"
	"hitsndiffs/internal/irt"
	"hitsndiffs/internal/rank"
	"hitsndiffs/internal/truth"
)

// simulatedMethods is the method list of Figures 12 and 13 (includes both
// cheating baselines), extended beyond the paper with the binary-only
// methods of Ghosh et al., Dalvi et al. and GLAD, which are applicable to
// these dichotomous workloads.
func simulatedMethods(correct []int) []core.Ranker {
	ms := rankersByName("HnD-power", "ABH-power", "HITS", "TruthFinder", "Invest", "PooledInv")
	ms = append(ms,
		grmest.Estimator{Opts: grmest.Options{EMIterations: 15}},
		truth.TrueAnswer{Correct: correct},
	)
	ms = append(ms, rankersByName("Ghosh-spectral", "Dalvi-spectral")...)
	return append(ms, truth.GLAD{EMIterations: 25})
}

// SimulatedMethodNames is the legend of Figures 12/13 (the last three
// series are this library's extension).
func SimulatedMethodNames() []string {
	return []string{"HnD", "ABH", "HITS", "TF", "Inv", "PooledInv", "GRM-estimator", "True-answer",
		"Ghosh-spectral", "Dalvi-spectral", "GLAD"}
}

func simulatedDisplayName(r core.Ranker) string {
	switch r.Name() {
	case "HnD-power":
		return "HnD"
	case "ABH-power":
		return "ABH"
	case "TruthFinder":
		return "TF"
	case "Invest":
		return "Inv"
	case "True-Answer":
		return "True-answer"
	default:
		return r.Name()
	}
}

// runSimulated evaluates all methods on Reps datasets produced by gen and
// returns the mean and standard deviation of accuracy (in percent) against
// the true abilities.
func runSimulated(ctx context.Context, gen func(rep int) *irt.Dataset, cfg Config, skipTF bool) (mean, std map[string]float64) {
	perMethod := map[string][]float64{}
	for r := 0; r < cfg.Reps; r++ {
		d := gen(r)
		for _, m := range simulatedMethods(d.Correct) {
			name := simulatedDisplayName(m)
			if skipTF && name == "TF" {
				// The paper omits TruthFinder from the 2692-student run.
				continue
			}
			res, err := m.Rank(ctx, d.Responses)
			if err != nil {
				continue
			}
			rho := rank.Spearman(res.Scores, d.Abilities)
			perMethod[name] = append(perMethod[name], 100*rho)
		}
	}
	mean = map[string]float64{}
	std = map[string]float64{}
	for name, vals := range perMethod {
		var s float64
		for _, v := range vals {
			s += v
		}
		mu := s / float64(len(vals))
		var ss float64
		for _, v := range vals {
			ss += (v - mu) * (v - mu)
		}
		mean[name] = mu
		std[name] = math.Sqrt(ss / float64(len(vals)))
	}
	return mean, std
}

// Fig12AmericanExperience reproduces Figure 12: the simulated American
// Experience test with class-sized (100) and original-cohort (2692, or 500
// under Quick) student counts. Two tables are returned: mean accuracy and
// its standard deviation over the repetitions.
func Fig12AmericanExperience(ctx context.Context, cfg Config) (mean, std *Table, err error) {
	cfg.defaults()
	methods := SimulatedMethodNames()
	mean = NewTable("fig12-american-experience", "Accuracy on simulated American Experience data (mean %)",
		"students", "accuracy-%", methods)
	std = NewTable("fig12-american-experience-std", "Accuracy on simulated American Experience data (std %)",
		"students", "accuracy-%", methods)
	sizes := []int{100, 2692}
	if cfg.Quick {
		sizes = []int{100, 500}
	}
	for _, size := range sizes {
		size := size
		skipTF := size > 1000
		mu, sd := runSimulated(ctx, func(rep int) *irt.Dataset {
			return dataset.AmericanExperience(size, cfg.Seed+int64(rep)*71+int64(size))
		}, cfg, skipTF)
		mean.AddRow(float64(size), mu)
		std.AddRow(float64(size), sd)
	}
	return mean, std, nil
}

// Fig13HalfMoon reproduces Figure 13b: accuracy on simulated data whose
// (log a, b) item parameters follow the half-moon pattern.
func Fig13HalfMoon(ctx context.Context, cfg Config) (mean, std *Table, err error) {
	cfg.defaults()
	methods := SimulatedMethodNames()
	mean = NewTable("fig13-half-moon", "Accuracy on half-moon simulated data (mean %)",
		"config", "accuracy-%", methods)
	std = NewTable("fig13-half-moon-std", "Accuracy on half-moon simulated data (std %)",
		"config", "accuracy-%", methods)
	mu, sd := runSimulated(ctx, func(rep int) *irt.Dataset {
		d, _ := dataset.HalfMoon(100, 100, cfg.Seed+int64(rep)*53)
		return d
	}, cfg, false)
	mean.AddRowText(0, "100x100", mu)
	std.AddRowText(0, "100x100", sd)
	return mean, std, nil
}
