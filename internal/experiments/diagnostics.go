package experiments

import (
	"context"

	"hitsndiffs/internal/core"
	"hitsndiffs/internal/irt"
)

// Fig14Beta reproduces Figure 14a: the number of ABH-power iterations as a
// function of the β coefficient, reported relative to the smallest count
// (the paper divides by the minimum).
func Fig14Beta(ctx context.Context, cfg Config) (*Table, error) {
	cfg.defaults()
	t := NewTable("fig14a-beta", "ABH-power iterations vs β coefficient (relative to minimum)",
		"beta-multiplier", "relative-iterations", []string{"ABH-Power"})
	gen := irt.DefaultConfig(irt.ModelSamejima)
	gen.Seed = cfg.Seed
	d, err := irt.Generate(gen)
	if err != nil {
		return nil, err
	}
	u := core.NewUpdate(d.Responses)
	base := u.DiagCCT().NormInf()
	multipliers := []float64{1, 2, 4, 6, 8, 10}
	iters := make([]int, len(multipliers))
	minIters := 0
	for i, mult := range multipliers {
		_, its, err := core.ABHDiffEigenvector(ctx, d.Responses, core.Options{Seed: cfg.Seed}, base*mult)
		if err != nil {
			return nil, err
		}
		iters[i] = its
		if minIters == 0 || its < minIters {
			minIters = its
		}
	}
	for i, mult := range multipliers {
		t.AddRow(mult, map[string]float64{
			"ABH-Power": float64(iters[i]) / float64(minIters),
		})
	}
	return t, nil
}

// Fig14Iterations reproduces Figure 14b: iteration counts of the power-
// style implementations as the number of questions grows.
func Fig14Iterations(ctx context.Context, cfg Config) (*Table, error) {
	cfg.defaults()
	methods := []string{"ABH-Power", "HnD-Deflation", "HnD-Power"}
	t := NewTable("fig14b-iterations", "Iterations vs number of questions",
		"questions", "iterations", methods)
	sweep := []int{10, 100, 1000, 10000}
	if cfg.Quick {
		sweep = []int{10, 100, 1000}
	}
	for _, n := range sweep {
		gen := irt.DefaultConfig(irt.ModelSamejima)
		gen.Items = n
		gen.Seed = cfg.Seed + int64(n)
		d, err := irt.Generate(gen)
		if err != nil {
			return nil, err
		}
		_, abhIters, err := core.ABHDiffEigenvector(ctx, d.Responses, core.Options{Seed: cfg.Seed}, 0)
		if err != nil {
			return nil, err
		}
		_, hndIters, err := core.DiffEigenvector(ctx, d.Responses, core.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		defRes, err := (core.HNDDeflation{Opts: core.Options{Seed: cfg.Seed}}).Rank(ctx, d.Responses)
		if err != nil {
			return nil, err
		}
		t.AddRow(float64(n), map[string]float64{
			"ABH-Power":     float64(abhIters),
			"HnD-Power":     float64(hndIters),
			"HnD-Deflation": float64(defRes.Iterations),
		})
	}
	return t, nil
}
