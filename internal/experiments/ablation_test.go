package experiments

import (
	"context"
	"testing"
)

func TestAblationOrientation(t *testing.T) {
	tbl, err := AblationOrientation(context.Background(), Config{Reps: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	// At strong discrimination the heuristic must orient correctly and the
	// oriented accuracy must be high.
	last := len(tbl.Rows) - 1
	if tbl.Get(last, "correct-rate") < 0.99 {
		t.Fatalf("orientation correct-rate %v at max discrimination", tbl.Get(last, "correct-rate"))
	}
	if tbl.Get(last, "oriented-rho") < 0.9 {
		t.Fatalf("oriented ρ %v at max discrimination", tbl.Get(last, "oriented-rho"))
	}
	// Oriented must dominate raw on average (raw has arbitrary sign).
	if tbl.MeanOf("oriented-rho") <= tbl.MeanOf("raw-rho") {
		t.Fatalf("orientation does not help: %v vs %v",
			tbl.MeanOf("oriented-rho"), tbl.MeanOf("raw-rho"))
	}
}

func TestAblationConvergenceTol(t *testing.T) {
	tbl, err := AblationConvergenceTol(context.Background(), Config{Reps: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	// Iterations must grow as the tolerance tightens.
	first := tbl.Get(0, "iterations")
	last := tbl.Get(len(tbl.Rows)-1, "iterations")
	if last <= first {
		t.Fatalf("iterations did not grow with tighter tolerance: %v -> %v", first, last)
	}
	// Accuracy at the default tolerance must match the tightest setting.
	if tbl.Get(3, "rho") < tbl.Get(4, "rho")-0.01 {
		t.Fatalf("1e-5 accuracy %v below 1e-8 accuracy %v", tbl.Get(3, "rho"), tbl.Get(4, "rho"))
	}
}
