package experiments

import (
	"context"
	"errors"
	"math"
	"time"

	"hitsndiffs/internal/core"
	"hitsndiffs/internal/grmest"
	"hitsndiffs/internal/irt"
	"hitsndiffs/internal/response"
)

// TimingConfig controls the scalability experiments of Figure 5.
type TimingConfig struct {
	// Runs is the number of timed runs per point; the median is reported
	// (the paper uses 5). Default 3.
	Runs int
	// Timeout drops a method from larger sizes once a single run exceeds
	// it (the paper uses 1000 s). Default 10 s so the suite stays usable.
	Timeout time.Duration
	// Seed drives dataset generation.
	Seed int64
	// Quick caps the sweep at 10⁴ instead of 10⁵.
	Quick bool
}

func (c *TimingConfig) defaults() {
	if c.Runs <= 0 {
		c.Runs = 3
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// scalabilityMethods returns the implementations compared in Figure 5.
func scalabilityMethods() []core.Ranker {
	ms := []core.Ranker{grmest.Estimator{Opts: grmest.Options{EMIterations: 10}}}
	return append(ms, rankersByName("ABH-power", "ABH-direct", "HnD-direct", "HnD-deflation", "HnD-power")...)
}

// ScalabilityMethodNames is the legend of Figure 5.
func ScalabilityMethodNames() []string {
	return []string{"GRM-estimator", "ABH-Power", "ABH-Direct", "HnD-Direct", "HnD-Deflation", "HnD-Power"}
}

func scalabilityDisplayName(r core.Ranker) string {
	switch r.Name() {
	case "ABH-power":
		return "ABH-Power"
	case "ABH-direct":
		return "ABH-Direct"
	case "HnD-direct":
		return "HnD-Direct"
	case "HnD-deflation":
		return "HnD-Deflation"
	case "HnD-power":
		return "HnD-Power"
	default:
		return r.Name()
	}
}

func sizeSweep(quick bool) []int {
	if quick {
		return []int{10, 100, 1000}
	}
	return []int{10, 100, 1000, 10000, 100000}
}

// timeMethods measures the median wall time of each still-alive method on
// the dataset, marking methods that exceed the timeout as dead for larger
// sizes. The per-run timeout is enforced with a context deadline, so a
// too-slow solve is interrupted mid-iteration instead of merely being
// noticed after the fact.
func timeMethods(ctx context.Context, m *response.Matrix, cfg TimingConfig, dead map[string]bool) map[string]float64 {
	out := make(map[string]float64)
	for _, r := range scalabilityMethods() {
		name := scalabilityDisplayName(r)
		if dead[name] {
			out[name] = math.NaN()
			continue
		}
		var times []float64
		timedOut := false
		for run := 0; run < cfg.Runs; run++ {
			if ctx.Err() != nil {
				// The whole sweep was cancelled (Ctrl-C); don't record a
				// bogus timeout for this method.
				return out
			}
			runCtx, cancel := context.WithTimeout(ctx, cfg.Timeout)
			start := time.Now()
			_, err := r.Rank(runCtx, m)
			elapsed := time.Since(start)
			cancel()
			if errors.Is(err, context.DeadlineExceeded) || elapsed > cfg.Timeout {
				timedOut = true
				break
			}
			if err != nil {
				timedOut = true
				break
			}
			times = append(times, elapsed.Seconds())
		}
		if len(times) == 0 {
			out[name] = math.NaN()
			dead[name] = true
			continue
		}
		out[name] = median(times)
		if timedOut {
			dead[name] = true
		}
	}
	return out
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[mid]
	}
	return (sorted[mid-1] + sorted[mid]) / 2
}

// Fig5ScaleUsers reproduces Figure 5a: execution time with n = 100
// questions and m growing to 10⁵ users. The reported series should show
// HnD-Power linear in m and the direct/ABH variants quadratic.
func Fig5ScaleUsers(ctx context.Context, cfg TimingConfig) (*Table, error) {
	cfg.defaults()
	t := NewTable("fig5a-scale-users", "Execution time vs number of users (n=100)",
		"users", "seconds", ScalabilityMethodNames())
	dead := map[string]bool{}
	for _, m := range sizeSweep(cfg.Quick) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		gen := irt.DefaultConfig(irt.ModelSamejima)
		gen.Users = m
		gen.Items = 100
		gen.Seed = cfg.Seed + int64(m)
		d, err := irt.Generate(gen)
		if err != nil {
			return nil, err
		}
		t.AddRow(float64(m), timeMethods(ctx, d.Responses, cfg, dead))
	}
	return t, nil
}

// Fig5ScaleQuestions reproduces Figure 5b: execution time with m = 100
// users and n growing to 10⁵ questions. Every implementation should be
// near-linear here.
func Fig5ScaleQuestions(ctx context.Context, cfg TimingConfig) (*Table, error) {
	cfg.defaults()
	t := NewTable("fig5b-scale-questions", "Execution time vs number of questions (m=100)",
		"questions", "seconds", ScalabilityMethodNames())
	dead := map[string]bool{}
	for _, n := range sizeSweep(cfg.Quick) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		gen := irt.DefaultConfig(irt.ModelSamejima)
		gen.Users = 100
		gen.Items = n
		gen.Seed = cfg.Seed + int64(n)
		d, err := irt.Generate(gen)
		if err != nil {
			return nil, err
		}
		t.AddRow(float64(n), timeMethods(ctx, d.Responses, cfg, dead))
	}
	return t, nil
}
