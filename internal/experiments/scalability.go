package experiments

import (
	"math"
	"time"

	"hitsndiffs/internal/core"
	"hitsndiffs/internal/grmest"
	"hitsndiffs/internal/irt"
	"hitsndiffs/internal/response"
)

// TimingConfig controls the scalability experiments of Figure 5.
type TimingConfig struct {
	// Runs is the number of timed runs per point; the median is reported
	// (the paper uses 5). Default 3.
	Runs int
	// Timeout drops a method from larger sizes once a single run exceeds
	// it (the paper uses 1000 s). Default 10 s so the suite stays usable.
	Timeout time.Duration
	// Seed drives dataset generation.
	Seed int64
	// Quick caps the sweep at 10⁴ instead of 10⁵.
	Quick bool
}

func (c *TimingConfig) defaults() {
	if c.Runs <= 0 {
		c.Runs = 3
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// scalabilityMethods returns the implementations compared in Figure 5.
func scalabilityMethods() []core.Ranker {
	return []core.Ranker{
		grmest.Estimator{Opts: grmest.Options{EMIterations: 10}},
		core.ABHPower{},
		core.ABHDirect{},
		core.HNDDirect{},
		core.HNDDeflation{},
		core.HNDPower{},
	}
}

// ScalabilityMethodNames is the legend of Figure 5.
func ScalabilityMethodNames() []string {
	return []string{"GRM-estimator", "ABH-Power", "ABH-Direct", "HnD-Direct", "HnD-Deflation", "HnD-Power"}
}

func scalabilityDisplayName(r core.Ranker) string {
	switch r.Name() {
	case "ABH-power":
		return "ABH-Power"
	case "ABH-direct":
		return "ABH-Direct"
	case "HnD-direct":
		return "HnD-Direct"
	case "HnD-deflation":
		return "HnD-Deflation"
	case "HnD-power":
		return "HnD-Power"
	default:
		return r.Name()
	}
}

func sizeSweep(quick bool) []int {
	if quick {
		return []int{10, 100, 1000}
	}
	return []int{10, 100, 1000, 10000, 100000}
}

// timeMethods measures the median wall time of each still-alive method on
// the dataset, marking methods that exceed the timeout as dead for larger
// sizes.
func timeMethods(m *response.Matrix, cfg TimingConfig, dead map[string]bool) map[string]float64 {
	out := make(map[string]float64)
	for _, r := range scalabilityMethods() {
		name := scalabilityDisplayName(r)
		if dead[name] {
			out[name] = math.NaN()
			continue
		}
		var times []float64
		timedOut := false
		for run := 0; run < cfg.Runs; run++ {
			start := time.Now()
			_, err := r.Rank(m)
			elapsed := time.Since(start)
			if err != nil {
				timedOut = true
				break
			}
			times = append(times, elapsed.Seconds())
			if elapsed > cfg.Timeout {
				timedOut = true
				break
			}
		}
		if len(times) == 0 {
			out[name] = math.NaN()
			dead[name] = true
			continue
		}
		out[name] = median(times)
		if timedOut {
			dead[name] = true
		}
	}
	return out
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[mid]
	}
	return (sorted[mid-1] + sorted[mid]) / 2
}

// Fig5ScaleUsers reproduces Figure 5a: execution time with n = 100
// questions and m growing to 10⁵ users. The reported series should show
// HnD-Power linear in m and the direct/ABH variants quadratic.
func Fig5ScaleUsers(cfg TimingConfig) (*Table, error) {
	cfg.defaults()
	t := NewTable("fig5a-scale-users", "Execution time vs number of users (n=100)",
		"users", "seconds", ScalabilityMethodNames())
	dead := map[string]bool{}
	for _, m := range sizeSweep(cfg.Quick) {
		gen := irt.DefaultConfig(irt.ModelSamejima)
		gen.Users = m
		gen.Items = 100
		gen.Seed = cfg.Seed + int64(m)
		d, err := irt.Generate(gen)
		if err != nil {
			return nil, err
		}
		t.AddRow(float64(m), timeMethods(d.Responses, cfg, dead))
	}
	return t, nil
}

// Fig5ScaleQuestions reproduces Figure 5b: execution time with m = 100
// users and n growing to 10⁵ questions. Every implementation should be
// near-linear here.
func Fig5ScaleQuestions(cfg TimingConfig) (*Table, error) {
	cfg.defaults()
	t := NewTable("fig5b-scale-questions", "Execution time vs number of questions (m=100)",
		"questions", "seconds", ScalabilityMethodNames())
	dead := map[string]bool{}
	for _, n := range sizeSweep(cfg.Quick) {
		gen := irt.DefaultConfig(irt.ModelSamejima)
		gen.Users = 100
		gen.Items = n
		gen.Seed = cfg.Seed + int64(n)
		d, err := irt.Generate(gen)
		if err != nil {
			return nil, err
		}
		t.AddRow(float64(n), timeMethods(d.Responses, cfg, dead))
	}
	return t, nil
}
