package experiments

import (
	"hitsndiffs/internal/dataset"
	"hitsndiffs/internal/irt"
)

// Fig13Scatter reproduces Figure 13a: the half-moon scatter of
// (log discrimination, difficulty) item parameters. Each row is one sampled
// item.
func Fig13Scatter(items int, seed int64) *Table {
	if items <= 0 {
		items = 200
	}
	_, pts := dataset.HalfMoonItems(items, seed)
	t := NewTable("fig13a-half-moon-scatter", "Half-moon distribution of item parameters",
		"item", "value", []string{"log-a", "b", "c"})
	for i, p := range pts {
		t.AddRow(float64(i), map[string]float64{"log-a": p.LogA, "b": p.B, "c": p.C})
	}
	return t
}

// Fig8Curves reproduces Figure 8a/8b of the appendix: the probability of
// choosing each of three options under a GRM item and under the Bock item
// constructed to approximate it, sampled over the ability grid. Columns are
// GRM-opt0..2 and Bock-opt0..2.
func Fig8Curves(a float64, points int) *Table {
	if a <= 0 {
		a = 8
	}
	if points <= 0 {
		points = 25
	}
	bs := []float64{-0.2, 0.2}
	grm := irt.GRM{A: []float64{a}, B: [][]float64{bs}}
	alpha, beta := irt.BockFromGRM(a, bs)
	bock := irt.Bock{Alpha: [][]float64{alpha}, Beta: [][]float64{beta}}

	t := NewTable("fig8-grm-vs-bock", "GRM vs Bock option probabilities (a=8, b=±0.2)",
		"theta", "probability",
		[]string{"GRM-opt0", "GRM-opt1", "GRM-opt2", "Bock-opt0", "Bock-opt1", "Bock-opt2"})
	g := make([]float64, 3)
	b := make([]float64, 3)
	lo, hi := -0.75, 0.75
	step := (hi - lo) / float64(points-1)
	for p := 0; p < points; p++ {
		theta := lo + float64(p)*step
		grm.Probs(0, theta, g)
		bock.Probs(0, theta, b)
		t.AddRow(theta, map[string]float64{
			"GRM-opt0": g[0], "GRM-opt1": g[1], "GRM-opt2": g[2],
			"Bock-opt0": b[0], "Bock-opt1": b[1], "Bock-opt2": b[2],
		})
	}
	return t
}

// Fig1Curves reproduces Figure 1c: the probability of picking the correct
// answer for the three items of the running example under a GRM fit, as a
// function of user ability.
func Fig1Curves(points int) *Table {
	if points <= 0 {
		points = 21
	}
	// Three items of increasing difficulty over the [0, 1] ability range.
	model := irt.GRM{
		A: []float64{12, 12, 12},
		B: [][]float64{{0.15, 0.35}, {0.35, 0.6}, {0.6, 0.85}},
	}
	t := NewTable("fig1c-example-curves", "P(correct) per item for the Figure 1 example",
		"theta", "probability", []string{"item1", "item2", "item3"})
	for p := 0; p < points; p++ {
		theta := float64(p) / float64(points-1)
		t.AddRow(theta, map[string]float64{
			"item1": irt.ProbCorrect(model, 0, theta),
			"item2": irt.ProbCorrect(model, 1, theta),
			"item3": irt.ProbCorrect(model, 2, theta),
		})
	}
	return t
}
