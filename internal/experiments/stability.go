package experiments

import (
	"context"
	"math"

	"hitsndiffs/internal/core"
	"hitsndiffs/internal/irt"
	"hitsndiffs/internal/mat"
	"hitsndiffs/internal/rank"
)

// StabilityResult bundles the three panels of Figure 6: the variance of
// the difference eigenvector each method ranks by, the normalized user
// displacement across resampled response matrices, and the resulting
// ranking accuracy, all as functions of the question discrimination.
type StabilityResult struct {
	Variance     *Table // Fig 6a
	Displacement *Table // Fig 6b
	Accuracy     *Table // Fig 6c
}

// stabilityModel builds the Section IV-D setup: m users with equally spaced
// abilities in [0,1], n items with equally spaced difficulties in
// [−0.5, 0.5] (all options of an item share the difficulty), and identical
// discrimination a for every item.
func stabilityModel(users, items, options int, a float64) (irt.GRM, mat.Vector) {
	abilities := mat.NewVector(users)
	for u := range abilities {
		abilities[u] = float64(u) / float64(users-1)
	}
	disc := make([]float64, items)
	bs := make([][]float64, items)
	for i := range bs {
		b := -0.5 + float64(i)/float64(items-1)
		disc[i] = a
		row := make([]float64, options-1)
		for h := range row {
			// GRM needs ascending thresholds; collapse toward a single
			// difficulty with infinitesimal separation.
			row[h] = b + 1e-9*float64(h)
		}
		bs[i] = row
	}
	return irt.GRM{A: disc, B: bs}, abilities
}

// Fig6Stability reproduces Figures 6a–6c: HND versus ABH as the question
// discrimination sweeps 2⁰..2⁴, with Reps resampled response matrices per
// point.
func Fig6Stability(ctx context.Context, cfg Config) (*StabilityResult, error) {
	cfg.defaults()
	const users, items, options = 100, 100, 3
	methods := []string{"ABH", "HnD"}
	variance := NewTable("fig6a-variance", "Variance of the ranking eigenvector",
		"discrimination", "variance", methods)
	displacement := NewTable("fig6b-displacement", "Normalized user displacement across runs",
		"discrimination", "displacement", methods)
	accuracy := NewTable("fig6c-accuracy", "Ranking accuracy",
		"discrimination", "spearman", methods)

	for _, a := range []float64{1, 2, 4, 8, 16} {
		model, abilities := stabilityModel(users, items, options, a)
		var varH, varA float64
		hndScores := make([]mat.Vector, 0, cfg.Reps)
		abhScores := make([]mat.Vector, 0, cfg.Reps)
		var accH, accA float64
		for r := 0; r < cfg.Reps; r++ {
			seed := cfg.Seed + int64(r)*977 + int64(a*31)
			d := irt.GenerateFromModel(model, abilities, 1, seed)

			hd, _, err := core.DiffEigenvector(ctx, d.Responses, core.Options{Seed: seed})
			if err != nil {
				return nil, err
			}
			varH += hd.Variance()
			ad, _, err := core.ABHDiffEigenvector(ctx, d.Responses, core.Options{Seed: seed}, 0)
			if err != nil {
				return nil, err
			}
			varA += ad.Variance()

			hres, err := (core.HNDPower{Opts: core.Options{Seed: seed}}).Rank(ctx, d.Responses)
			if err != nil {
				return nil, err
			}
			ares, err := (core.ABHPower{Opts: core.Options{Seed: seed}}).Rank(ctx, d.Responses)
			if err != nil {
				return nil, err
			}
			hndScores = append(hndScores, hres.Scores)
			abhScores = append(abhScores, ares.Scores)
			accH += rank.Spearman(hres.Scores, d.Abilities)
			accA += rank.Spearman(ares.Scores, d.Abilities)
		}
		reps := float64(cfg.Reps)
		variance.AddRow(a, map[string]float64{"HnD": varH / reps, "ABH": varA / reps})
		displacement.AddRow(a, map[string]float64{
			"HnD": meanPairwiseDisplacement(hndScores),
			"ABH": meanPairwiseDisplacement(abhScores),
		})
		accuracy.AddRow(a, map[string]float64{"HnD": accH / reps, "ABH": accA / reps})
	}
	return &StabilityResult{Variance: variance, Displacement: displacement, Accuracy: accuracy}, nil
}

// meanPairwiseDisplacement averages the normalized user displacement over
// all pairs of runs (Section IV-D's stability measure).
func meanPairwiseDisplacement(scores []mat.Vector) float64 {
	if len(scores) < 2 {
		return math.NaN()
	}
	var s float64
	var n int
	for i := 0; i < len(scores); i++ {
		for j := i + 1; j < len(scores); j++ {
			s += rank.NormalizedDisplacement(scores[i], scores[j])
			n++
		}
	}
	return s / float64(n)
}
