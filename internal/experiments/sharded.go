package experiments

import (
	"context"
	"fmt"
	"time"

	"hitsndiffs"
	"hitsndiffs/internal/irt"
)

// ShardedConfig tunes the sharded-serving throughput sweep.
type ShardedConfig struct {
	// MaxShards bounds the swept shard counts (1, 2, 4, ... ≤ MaxShards).
	MaxShards int
	// Seed seeds the synthetic workload and the solves.
	Seed int64
	// Quick shrinks the workload for smoke runs.
	Quick bool
}

// ShardedServing measures the serving engine's horizontal scaling: for each
// shard count it drives the two steady-state traffic patterns the sharded
// router optimizes — snapshot-interleaved writes (every Observe pays its
// shard's copy-on-write clone) and single-user write + full re-rank (only
// the written shard re-solves) — and reports the mean latency per
// operation. It is the experiments-harness twin of BenchmarkShardedObserve
// and BenchmarkShardedRank.
func ShardedServing(ctx context.Context, cfg ShardedConfig) (*Table, error) {
	users, items, writes, reranks := 2000, 200, 400, 30
	if cfg.Quick {
		users, items, writes, reranks = 800, 80, 150, 12
	}
	gen := irt.DefaultConfig(irt.ModelSamejima)
	gen.Users, gen.Items, gen.Seed = users, items, cfg.Seed
	d, err := irt.Generate(gen)
	if err != nil {
		return nil, err
	}

	const observeCol, rerankCol = "observe µs/op", "write+rerank ms/op"
	t := NewTable("sharded-serving",
		fmt.Sprintf("sharded engine serving latency, m=%d n=%d", users, items),
		"shards", "latency", []string{observeCol, rerankCol})

	max := cfg.MaxShards
	if max < 1 {
		max = 1
	}
	for n := 1; n <= max; n *= 2 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		eng, err := hitsndiffs.NewShardedEngine(d.Responses,
			hitsndiffs.WithShards(n),
			hitsndiffs.WithRankOptions(hitsndiffs.WithSeed(cfg.Seed)))
		if err != nil {
			return nil, err
		}

		start := time.Now()
		for i := 0; i < writes; i++ {
			eng.View() // an outstanding snapshot makes the write pay its shard's COW clone
			if err := eng.Observe(i%eng.Users(), i%eng.Items(), 0); err != nil {
				return nil, err
			}
		}
		observeUS := time.Since(start).Seconds() * 1e6 / float64(writes)

		if _, err := eng.Rank(ctx); err != nil { // common cold start
			return nil, err
		}
		start = time.Now()
		for i := 0; i < reranks; i++ {
			if err := eng.Observe(i%eng.Users(), i%eng.Items(), 1); err != nil {
				return nil, err
			}
			if _, err := eng.Rank(ctx); err != nil {
				return nil, err
			}
		}
		rerankMS := time.Since(start).Seconds() * 1e3 / float64(reranks)

		t.AddRow(float64(eng.Shards()), map[string]float64{
			observeCol: observeUS,
			rerankCol:  rerankMS,
		})
	}
	return t, nil
}
