package response

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzMemoInvariants drives an arbitrary byte-coded sequence of writes,
// retractions, clones and memo reads through one matrix and asserts the
// invariants of the generation-keyed caches: the generation counter bumps
// exactly once per SetAnswer, the memoized one-hot encoding and its
// normalized forms are never stale after SetAnswer or Clone (always bitwise
// identical to from-scratch derivation), and a clone's writes never move its
// parent's generation or memo.
func FuzzMemoInvariants(f *testing.F) {
	f.Add([]byte{0x00, 0x41, 0x13, 0x7f, 0x20})
	f.Add([]byte("write-clone-write"))
	f.Add([]byte{0xff, 0xff, 0x00, 0x00, 0x91, 0x55})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const users, items, k = 7, 5, 3
		m := New(users, items, k)
		if len(ops) > 64 {
			ops = ops[:64]
		}
		gen := m.Generation()
		for pc, op := range ops {
			u, i := int(op>>4)%users, int(op>>2)%items
			switch op % 4 {
			case 0: // answer
				m.SetAnswer(u, i, int(op)%k)
				gen++
			case 1: // retract
				m.SetAnswer(u, i, Unanswered)
				gen++
			case 2: // materialize the memos mid-sequence
				m.Binary()
				m.Normalized()
			case 3: // copy-on-write fork: clone writes must not leak back
				clone := m.Clone()
				if clone.Generation() != gen {
					t.Fatalf("op %d: clone generation %d, want inherited %d", pc, clone.Generation(), gen)
				}
				clone.SetAnswer(u, i, int(op)%k)
				if _, crow, ccol := clone.Normalized(); true {
					wantRow, wantCol := scratchNormalized(clone)
					if !csrBitwiseEqual(crow, wantRow) || !csrBitwiseEqual(ccol, wantCol) {
						t.Fatalf("op %d: clone memo stale after write", pc)
					}
				}
			}
			if g := m.Generation(); g != gen {
				t.Fatalf("op %d: generation %d, want %d", pc, g, gen)
			}
		}
		if got, want := m.Binary(), scratchBinary(m); !csrBitwiseEqual(got, want) {
			t.Fatal("memoized encoding stale at end of sequence")
		}
		_, crow, ccol := m.Normalized()
		wantRow, wantCol := scratchNormalized(m)
		if !csrBitwiseEqual(crow, wantRow) || !csrBitwiseEqual(ccol, wantCol) {
			t.Fatal("memoized normalized forms stale at end of sequence")
		}
		if c, crow2, ccol2 := m.Normalized(); c != m.Binary() || crow2 != crow || ccol2 != ccol {
			t.Fatal("unchanged matrix must serve the identical memo pointers")
		}
	})
}

// FuzzReadCSV asserts that arbitrary input never panics the parser and that
// anything it accepts survives a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("3,3\n0,1\n2,0\n")
	f.Add("2\n\n")
	f.Add("2,2\n0,\n,1\n")
	f.Add("1,1,1\n0,0,0\n")
	f.Add("x\n0\n")
	f.Add("3,3\n-1,5\n")
	f.Fuzz(func(t *testing.T, input string) {
		m, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := m.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted matrix failed to serialize: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.Users() != m.Users() || back.Items() != m.Items() {
			t.Fatalf("round trip changed shape: %dx%d vs %dx%d",
				back.Users(), back.Items(), m.Users(), m.Items())
		}
		for u := 0; u < m.Users(); u++ {
			for i := 0; i < m.Items(); i++ {
				if back.Answer(u, i) != m.Answer(u, i) {
					t.Fatal("round trip changed answers")
				}
			}
		}
	})
}
