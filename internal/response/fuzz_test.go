package response

import (
	"bytes"
	"math"
	"sort"
	"strings"
	"testing"

	"hitsndiffs/internal/mat"
)

// FuzzMemoInvariants drives an arbitrary byte-coded sequence of writes,
// retractions, clones and memo reads through one matrix and asserts the
// invariants of the generation-keyed caches: the generation counter bumps
// exactly once per SetAnswer, the memoized one-hot encoding and its
// normalized forms are never stale after SetAnswer or Clone (always bitwise
// identical to from-scratch derivation), a clone's writes never move its
// parent's generation or memo, and the NormDelta handed to certification is
// exactly the memo's dirty support: the rows written since the previous
// normalization and the columns whose sums changed bitwise.
func FuzzMemoInvariants(f *testing.F) {
	f.Add([]byte{0x00, 0x41, 0x13, 0x7f, 0x20})
	f.Add([]byte("write-clone-write"))
	f.Add([]byte{0xff, 0xff, 0x00, 0x00, 0x91, 0x55})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const users, items, k = 7, 5, 3
		m := New(users, items, k)
		if len(ops) > 64 {
			ops = ops[:64]
		}
		gen := m.Generation()
		written := make(map[int]bool) // rows written since the last normalization
		normed := false               // whether m.Normalized has ever run
		var prevSums mat.Vector
		checkDelta := func(pc int) {
			c, _, _, d := m.NormalizedDelta()
			sums := c.ColSums()
			switch {
			case !normed:
				if !d.Full {
					t.Fatalf("op %d: first normalization must report Full", pc)
				}
			case d.Full:
				t.Fatalf("op %d: unexpected full normalization rebuild", pc)
			default:
				wantRows := make([]int, 0, len(written))
				for r := range written {
					wantRows = append(wantRows, r)
				}
				sort.Ints(wantRows)
				if !intsEqual(d.Rows, wantRows) {
					t.Fatalf("op %d: delta rows %v, want written rows %v", pc, d.Rows, wantRows)
				}
				var wantCols []int
				for j := range sums {
					if math.Float64bits(sums[j]) != math.Float64bits(prevSums[j]) {
						wantCols = append(wantCols, j)
					}
				}
				if !intsEqual(d.Cols, wantCols) {
					t.Fatalf("op %d: delta cols %v, want changed-sum cols %v", pc, d.Cols, wantCols)
				}
			}
			normed = true
			prevSums = sums
			for r := range written {
				delete(written, r)
			}
		}
		for pc, op := range ops {
			u, i := int(op>>4)%users, int(op>>2)%items
			switch op % 4 {
			case 0: // answer
				m.SetAnswer(u, i, int(op)%k)
				gen++
				written[u] = true
			case 1: // retract
				m.SetAnswer(u, i, Unanswered)
				gen++
				written[u] = true
			case 2: // materialize the memos mid-sequence
				m.Binary()
				checkDelta(pc)
			case 3: // copy-on-write fork: clone writes must not leak back
				clone := m.Clone()
				if clone.Generation() != gen {
					t.Fatalf("op %d: clone generation %d, want inherited %d", pc, clone.Generation(), gen)
				}
				clone.SetAnswer(u, i, int(op)%k)
				if _, crow, ccol := clone.Normalized(); true {
					wantRow, wantCol := scratchNormalized(clone)
					if !csrBitwiseEqual(crow, wantRow) || !csrBitwiseEqual(ccol, wantCol) {
						t.Fatalf("op %d: clone memo stale after write", pc)
					}
				}
			}
			if g := m.Generation(); g != gen {
				t.Fatalf("op %d: generation %d, want %d", pc, g, gen)
			}
		}
		if got, want := m.Binary(), scratchBinary(m); !csrBitwiseEqual(got, want) {
			t.Fatal("memoized encoding stale at end of sequence")
		}
		checkDelta(len(ops))
		_, crow, ccol := m.Normalized()
		wantRow, wantCol := scratchNormalized(m)
		if !csrBitwiseEqual(crow, wantRow) || !csrBitwiseEqual(ccol, wantCol) {
			t.Fatal("memoized normalized forms stale at end of sequence")
		}
		if c, crow2, ccol2 := m.Normalized(); c != m.Binary() || crow2 != crow || ccol2 != ccol {
			t.Fatal("unchanged matrix must serve the identical memo pointers")
		}
	})
}

// intsEqual reports whether two index lists hold the same values, treating
// nil and empty as equal.
func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FuzzReadCSV asserts that arbitrary input never panics the parser and that
// anything it accepts survives a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("3,3\n0,1\n2,0\n")
	f.Add("2\n\n")
	f.Add("2,2\n0,\n,1\n")
	f.Add("1,1,1\n0,0,0\n")
	f.Add("x\n0\n")
	f.Add("3,3\n-1,5\n")
	f.Fuzz(func(t *testing.T, input string) {
		m, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := m.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted matrix failed to serialize: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.Users() != m.Users() || back.Items() != m.Items() {
			t.Fatalf("round trip changed shape: %dx%d vs %dx%d",
				back.Users(), back.Items(), m.Users(), m.Items())
		}
		for u := 0; u < m.Users(); u++ {
			for i := 0; i < m.Items(); i++ {
				if back.Answer(u, i) != m.Answer(u, i) {
					t.Fatal("round trip changed answers")
				}
			}
		}
	})
}
