package response

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV asserts that arbitrary input never panics the parser and that
// anything it accepts survives a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("3,3\n0,1\n2,0\n")
	f.Add("2\n\n")
	f.Add("2,2\n0,\n,1\n")
	f.Add("1,1,1\n0,0,0\n")
	f.Add("x\n0\n")
	f.Add("3,3\n-1,5\n")
	f.Fuzz(func(t *testing.T, input string) {
		m, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := m.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted matrix failed to serialize: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.Users() != m.Users() || back.Items() != m.Items() {
			t.Fatalf("round trip changed shape: %dx%d vs %dx%d",
				back.Users(), back.Items(), m.Users(), m.Items())
		}
		for u := 0; u < m.Users(); u++ {
			for i := 0; i < m.Items(); i++ {
				if back.Answer(u, i) != m.Answer(u, i) {
					t.Fatal("round trip changed answers")
				}
			}
		}
	})
}
