package response

import (
	"bytes"
	"strings"
	"testing"
)

// paperExample builds the running example of the paper's Figure 1b:
// 4 users, 3 items, 3 options each; option 0 is "A" (best), 2 is "C".
func paperExample() *Matrix {
	m := New(4, 3, 3)
	answers := [][]int{
		{0, 0, 0}, // u1: A A A
		{0, 0, 2}, // u2: A A C
		{0, 1, 2}, // u3: A B C
		{1, 2, 2}, // u4: B C C
	}
	for u, row := range answers {
		for i, h := range row {
			m.SetAnswer(u, i, h)
		}
	}
	return m
}

func TestNewSingleOptionCount(t *testing.T) {
	m := New(2, 3, 4)
	if m.Users() != 2 || m.Items() != 3 || m.TotalOptions() != 12 {
		t.Fatalf("shape %d users %d items %d cols", m.Users(), m.Items(), m.TotalOptions())
	}
	if m.MaxOptions() != 4 {
		t.Fatalf("MaxOptions = %d", m.MaxOptions())
	}
}

func TestNewPerItemOptions(t *testing.T) {
	m := New(2, 3, 2, 3, 4)
	if m.TotalOptions() != 9 {
		t.Fatalf("TotalOptions = %d", m.TotalOptions())
	}
	if m.Column(1, 0) != 2 || m.Column(2, 3) != 8 {
		t.Fatal("Column offsets wrong")
	}
}

func TestNewPanicsOnBadCounts(t *testing.T) {
	for _, tc := range []func(){
		func() { New(0, 1, 2) },
		func() { New(1, 2, 2, 2, 2) },
		func() { New(1, 1, 0) },
		func() { New(1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc()
		}()
	}
}

func TestSetAnswerAndAnswer(t *testing.T) {
	m := New(2, 2, 3)
	if m.Answer(0, 0) != Unanswered {
		t.Fatal("fresh matrix should be unanswered")
	}
	m.SetAnswer(0, 0, 2)
	if m.Answer(0, 0) != 2 {
		t.Fatal("Answer after SetAnswer")
	}
	m.SetAnswer(0, 0, Unanswered)
	if m.Answer(0, 0) != Unanswered {
		t.Fatal("clearing answer failed")
	}
}

func TestSetAnswerOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1, 1, 2).SetAnswer(0, 0, 2)
}

func TestBinaryMatchesPaperFigure1(t *testing.T) {
	m := paperExample()
	c := m.Binary()
	if c.Rows() != 4 || c.Cols() != 9 {
		t.Fatalf("C is %dx%d", c.Rows(), c.Cols())
	}
	// Figure 1b, rows of C (users 1..4, columns 1A 1B 1C 2A 2B 2C 3A 3B 3C):
	want := [][]float64{
		{1, 0, 0, 1, 0, 0, 1, 0, 0},
		{1, 0, 0, 1, 0, 0, 0, 0, 1},
		{1, 0, 0, 0, 1, 0, 0, 0, 1},
		{0, 1, 0, 0, 0, 1, 0, 0, 1},
	}
	for u := range want {
		for j := range want[u] {
			if c.At(u, j) != want[u][j] {
				t.Fatalf("C(%d,%d) = %v, want %v", u, j, c.At(u, j), want[u][j])
			}
		}
	}
	if c.NNZ() != 12 {
		t.Fatalf("NNZ = %d, want m·n = 12", c.NNZ())
	}
}

func TestAnswerCount(t *testing.T) {
	m := New(2, 3, 2)
	m.SetAnswer(0, 0, 0)
	m.SetAnswer(0, 2, 1)
	if m.AnswerCount(0) != 2 || m.AnswerCount(1) != 0 {
		t.Fatal("AnswerCount wrong")
	}
}

func TestFromChoices(t *testing.T) {
	m := FromChoices([][]int{
		{0, 2},
		{1, Unanswered},
	}, 2)
	if m.OptionCount(0) != 2 || m.OptionCount(1) != 3 {
		t.Fatalf("option counts %d %d", m.OptionCount(0), m.OptionCount(1))
	}
	if m.Answer(1, 1) != Unanswered {
		t.Fatal("unanswered lost")
	}
}

func TestPermuteUsers(t *testing.T) {
	m := paperExample()
	p := m.PermuteUsers([]int{3, 2, 1, 0})
	if p.Answer(0, 0) != 1 || p.Answer(3, 0) != 0 {
		t.Fatal("PermuteUsers wrong")
	}
	// Original untouched.
	if m.Answer(0, 0) != 0 {
		t.Fatal("PermuteUsers mutated source")
	}
}

func TestIsConnected(t *testing.T) {
	m := paperExample()
	if !m.IsConnected() {
		t.Fatal("paper example should be connected")
	}
	// Two disjoint groups: users 0,1 answer item 0; users 2,3 answer item 1
	// with non-overlapping options.
	d := New(4, 2, 2)
	d.SetAnswer(0, 0, 0)
	d.SetAnswer(1, 0, 0)
	d.SetAnswer(2, 1, 1)
	d.SetAnswer(3, 1, 1)
	if d.IsConnected() {
		t.Fatal("disconnected graph reported connected")
	}
}

func TestIsConnectedIgnoresSilentUsers(t *testing.T) {
	m := New(3, 1, 2)
	m.SetAnswer(0, 0, 0)
	m.SetAnswer(1, 0, 0)
	// User 2 answers nothing; connectivity over active users should hold.
	if !m.IsConnected() {
		t.Fatal("silent users must not break connectivity")
	}
}

func TestOptionCounts(t *testing.T) {
	m := paperExample()
	got := m.OptionCounts(0)
	if got[0] != 3 || got[1] != 1 || got[2] != 0 {
		t.Fatalf("OptionCounts item0 = %v", got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	m := paperExample()
	m.SetAnswer(1, 2, Unanswered) // include a blank cell
	var buf bytes.Buffer
	if err := m.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Users() != m.Users() || back.Items() != m.Items() {
		t.Fatal("shape lost in round trip")
	}
	for u := 0; u < m.Users(); u++ {
		for i := 0; i < m.Items(); i++ {
			if back.Answer(u, i) != m.Answer(u, i) {
				t.Fatalf("answer (%d,%d) lost", u, i)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"header only":   "3,3\n",
		"bad header":    "x,3\n0,0\n",
		"bad cell":      "3,3\nz,0\n",
		"out of range":  "3,3\n5,0\n",
		"negative cell": "3,3\n-2,0\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	m := paperExample()
	c := m.Clone()
	c.SetAnswer(0, 0, 2)
	if m.Answer(0, 0) != 0 {
		t.Fatal("Clone shares storage")
	}
}
