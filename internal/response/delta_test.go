package response

import (
	"math"
	"math/rand"
	"testing"

	"hitsndiffs/internal/mat"
)

// csrBitwiseEqual reports exact structural and bit-level value equality.
func csrBitwiseEqual(a, b *mat.CSR) bool {
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() || a.NNZ() != b.NNZ() {
		return false
	}
	for r := 0; r < a.Rows(); r++ {
		ac, av := a.RowNNZ(r)
		bc, bv := b.RowNNZ(r)
		if len(ac) != len(bc) {
			return false
		}
		for i := range ac {
			if ac[i] != bc[i] || math.Float64bits(av[i]) != math.Float64bits(bv[i]) {
				return false
			}
		}
	}
	return true
}

// scratchBinary builds the one-hot encoding from scratch on an independent
// copy whose memo has never been populated.
func scratchBinary(m *Matrix) *mat.CSR {
	fresh := New(m.Users(), m.Items(), m.options...)
	for u := 0; u < m.Users(); u++ {
		for i := 0; i < m.Items(); i++ {
			fresh.SetAnswer(u, i, m.Answer(u, i))
		}
	}
	return fresh.Binary()
}

// TestDeltaRebuildBitwiseIdentical drives random write bursts through the
// memoized encoding and asserts every delta rebuild is bitwise identical to
// a from-scratch assembly — answers changed, added (previously unanswered)
// and retracted.
func TestDeltaRebuildBitwiseIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := randomMatrix(rng, 50, 30, 4, 0.7)
	m.Binary() // populate the memo

	for round := 0; round < 20; round++ {
		writes := 1 + rng.Intn(5)
		for w := 0; w < writes; w++ {
			u, i := rng.Intn(m.Users()), rng.Intn(m.Items())
			if rng.Float64() < 0.2 {
				m.SetAnswer(u, i, Unanswered) // retraction empties row entries
			} else {
				m.SetAnswer(u, i, rng.Intn(4))
			}
		}
		got := m.Binary()
		if want := scratchBinary(m); !csrBitwiseEqual(got, want) {
			t.Fatalf("round %d: delta rebuild differs from scratch rebuild", round)
		}
	}
	full, delta := m.CSRRebuilds()
	if full != 1 {
		t.Fatalf("expected exactly 1 full build, got %d", full)
	}
	if delta != 20 {
		t.Fatalf("expected 20 delta rebuilds, got %d", delta)
	}
}

// TestDeltaRebuildUnderOutstandingSnapshot is the copy-on-write contract:
// a clone taken while the memo is populated (what Engine.Observe does under
// an outstanding View) must leave the snapshot's encoding untouched, and
// the clone's next Binary() must be a delta rebuild that is bitwise
// identical to a from-scratch assembly of the written matrix.
func TestDeltaRebuildUnderOutstandingSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	snapshot := randomMatrix(rng, 40, 25, 3, 0.8)
	before := snapshot.Binary()
	beforeCopy := before.Clone()

	clone := snapshot.Clone()
	clone.SetAnswer(3, 5, 2)
	clone.SetAnswer(17, 0, Unanswered)

	got := clone.Binary()
	if want := scratchBinary(clone); !csrBitwiseEqual(got, want) {
		t.Fatal("clone's delta rebuild differs from scratch rebuild")
	}
	if _, delta := clone.CSRRebuilds(); delta != 1 {
		t.Fatal("clone should have paid a delta rebuild, not a full one")
	}

	// The snapshot never observes the rebuild: same pointer, same bits.
	if snapshot.Binary() != before {
		t.Fatal("snapshot's memoized encoding was replaced")
	}
	if !csrBitwiseEqual(before, beforeCopy) {
		t.Fatal("snapshot's memoized encoding was mutated in place")
	}
}

// TestCloneCarriesPendingDirtyRows clones between a write and the rebuild:
// the pending delta must travel with the clone.
func TestCloneCarriesPendingDirtyRows(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := randomMatrix(rng, 20, 10, 3, 0.9)
	m.Binary()
	m.SetAnswer(4, 4, 1) // dirty, not yet rebuilt
	clone := m.Clone()
	if want := scratchBinary(clone); !csrBitwiseEqual(clone.Binary(), want) {
		t.Fatal("clone lost the pending dirty row")
	}
	if want := scratchBinary(m); !csrBitwiseEqual(m.Binary(), want) {
		t.Fatal("parent lost the pending dirty row")
	}
}

func TestGenerationCountsWrites(t *testing.T) {
	m := New(4, 3, 2)
	if m.Generation() != 0 {
		t.Fatal("fresh matrix should be at generation 0")
	}
	m.SetAnswer(0, 0, 1)
	m.SetAnswer(1, 2, 0)
	if g := m.Generation(); g != 2 {
		t.Fatalf("generation = %d, want 2", g)
	}
	clone := m.Clone()
	if clone.Generation() != 2 {
		t.Fatal("clone should inherit its parent's generation")
	}
	clone.SetAnswer(0, 0, 0)
	if m.Generation() != 2 || clone.Generation() != 3 {
		t.Fatal("clone writes must not move the parent's generation")
	}
}

// TestPermuteUsersDropsMemo guards the one transform that rewrites rows
// behind the memo's back.
func TestPermuteUsersDropsMemo(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := randomMatrix(rng, 10, 6, 3, 0.9)
	m.Binary()
	perm := rng.Perm(10)
	p := m.PermuteUsers(perm)
	if want := scratchBinary(p); !csrBitwiseEqual(p.Binary(), want) {
		t.Fatal("PermuteUsers served a stale memoized encoding")
	}
}
