package response

import (
	"math/rand"
	"sort"
	"testing"

	"hitsndiffs/internal/mat"
)

// scratchNormalized derives C_row/C_col from scratch on an independent copy
// whose memos have never been populated.
func scratchNormalized(m *Matrix) (crow, ccol *mat.CSR) {
	c := scratchBinary(m)
	return c.RowNormalized(), c.ColNormalized()
}

// TestNormalizedMemoBitwiseIdentical drives random write bursts through the
// normalized memo and asserts every spliced refresh is bitwise identical to
// from-scratch normalization — answers changed, added and retracted.
func TestNormalizedMemoBitwiseIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	m := randomMatrix(rng, 50, 30, 4, 0.7)
	m.Normalized() // populate the memo

	for round := 0; round < 20; round++ {
		writes := 1 + rng.Intn(5)
		for w := 0; w < writes; w++ {
			u, i := rng.Intn(m.Users()), rng.Intn(m.Items())
			if rng.Float64() < 0.2 {
				m.SetAnswer(u, i, Unanswered)
			} else {
				m.SetAnswer(u, i, rng.Intn(4))
			}
		}
		c, crow, ccol := m.Normalized()
		if c != m.Binary() {
			t.Fatalf("round %d: Normalized returned a stale encoding", round)
		}
		wantRow, wantCol := scratchNormalized(m)
		if !csrBitwiseEqual(crow, wantRow) {
			t.Fatalf("round %d: spliced C_row differs from scratch", round)
		}
		if !csrBitwiseEqual(ccol, wantCol) {
			t.Fatalf("round %d: spliced C_col differs from scratch", round)
		}
	}
	full, delta := m.NormRebuilds()
	if full != 1 {
		t.Fatalf("expected exactly 1 full normalization, got %d", full)
	}
	if delta != 20 {
		t.Fatalf("expected 20 spliced normalizations, got %d", delta)
	}
}

// TestNormalizedMemoHit asserts an unchanged matrix returns the identical
// pointers without any rebuild — the warm re-rank fast path.
func TestNormalizedMemoHit(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	m := randomMatrix(rng, 20, 10, 3, 0.8)
	c1, r1, l1 := m.Normalized()
	c2, r2, l2 := m.Normalized()
	if c1 != c2 || r1 != r2 || l1 != l2 {
		t.Fatal("unchanged matrix should serve the memoized pointers")
	}
	if full, delta := m.NormRebuilds(); full != 1 || delta != 0 {
		t.Fatalf("memo hit should not rebuild (full=%d delta=%d)", full, delta)
	}
}

// TestNormalizedRowAndColumnEmptying covers the deleted-answer edge cases:
// a user retracting every answer (row empties) and an option losing its
// last taker (column empties).
func TestNormalizedRowAndColumnEmptying(t *testing.T) {
	m := New(3, 2, 3)
	m.SetAnswer(0, 0, 1)
	m.SetAnswer(0, 1, 2)
	m.SetAnswer(1, 0, 1)
	m.SetAnswer(2, 1, 0)
	m.Normalized()

	m.SetAnswer(0, 0, Unanswered) // user 0 halfway gone
	m.SetAnswer(0, 1, Unanswered) // row 0 now empty; item 1 option 2 column empty
	_, crow, ccol := m.Normalized()
	wantRow, wantCol := scratchNormalized(m)
	if !csrBitwiseEqual(crow, wantRow) || !csrBitwiseEqual(ccol, wantCol) {
		t.Fatal("row/column-emptying splice differs from scratch")
	}

	// Refill the emptied row and column.
	m.SetAnswer(0, 1, 2)
	_, crow, ccol = m.Normalized()
	wantRow, wantCol = scratchNormalized(m)
	if !csrBitwiseEqual(crow, wantRow) || !csrBitwiseEqual(ccol, wantCol) {
		t.Fatal("refill splice differs from scratch")
	}
	if full, delta := m.NormRebuilds(); full != 1 || delta != 2 {
		t.Fatalf("expected 1 full + 2 delta normalizations, got %d + %d", full, delta)
	}
}

// TestNormalizedMemoUnderOutstandingSnapshot is the copy-on-write contract
// for the normalized forms: a clone's spliced refresh must leave the
// snapshot's memo untouched, pointer and bits.
func TestNormalizedMemoUnderOutstandingSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	snapshot := randomMatrix(rng, 40, 25, 3, 0.8)
	_, crowBefore, ccolBefore := snapshot.Normalized()
	crowCopy, ccolCopy := crowBefore.Clone(), ccolBefore.Clone()

	clone := snapshot.Clone()
	clone.SetAnswer(3, 5, 2)
	clone.SetAnswer(17, 0, Unanswered)

	_, crow, ccol := clone.Normalized()
	wantRow, wantCol := scratchNormalized(clone)
	if !csrBitwiseEqual(crow, wantRow) || !csrBitwiseEqual(ccol, wantCol) {
		t.Fatal("clone's spliced normalization differs from scratch")
	}
	if full, delta := clone.NormRebuilds(); full != 1 || delta != 1 {
		t.Fatalf("clone should have paid a spliced refresh (full=%d delta=%d)", full, delta)
	}

	_, crowAfter, ccolAfter := snapshot.Normalized()
	if crowAfter != crowBefore || ccolAfter != ccolBefore {
		t.Fatal("snapshot's memoized normalized forms were replaced")
	}
	if !csrBitwiseEqual(crowBefore, crowCopy) || !csrBitwiseEqual(ccolBefore, ccolCopy) {
		t.Fatal("snapshot's memoized normalized forms were mutated in place")
	}
}

// TestNormalizedCloneCarriesPendingDirtyRows clones between a write and the
// refresh: the pending normalization delta must travel with the clone, on
// both sides.
func TestNormalizedCloneCarriesPendingDirtyRows(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	m := randomMatrix(rng, 20, 10, 3, 0.9)
	m.Normalized()
	m.SetAnswer(4, 4, 1) // dirty, not yet refreshed
	clone := m.Clone()
	for name, mm := range map[string]*Matrix{"clone": clone, "parent": m} {
		_, crow, ccol := mm.Normalized()
		wantRow, wantCol := scratchNormalized(mm)
		if !csrBitwiseEqual(crow, wantRow) || !csrBitwiseEqual(ccol, wantCol) {
			t.Fatalf("%s lost the pending normalization delta", name)
		}
	}
}

// TestNormalizedAfterInterleavedBinary covers the lagging-dirty-set case:
// Binary() may splice the one-hot CSR several times between Normalized()
// calls, so the normalization delta spans multiple encoding generations.
func TestNormalizedAfterInterleavedBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	m := randomMatrix(rng, 30, 15, 3, 0.8)
	m.Normalized()
	for i := 0; i < 4; i++ {
		m.SetAnswer(rng.Intn(30), rng.Intn(15), rng.Intn(3))
		m.Binary() // splice the encoding without refreshing the memo
	}
	_, crow, ccol := m.Normalized()
	wantRow, wantCol := scratchNormalized(m)
	if !csrBitwiseEqual(crow, wantRow) || !csrBitwiseEqual(ccol, wantCol) {
		t.Fatal("multi-generation splice differs from scratch")
	}
	if full, delta := m.NormRebuilds(); full != 1 || delta != 1 {
		t.Fatalf("four writes should collapse into one spliced refresh (full=%d delta=%d)", full, delta)
	}
}

// TestNormalizedPermuteUsersDropsMemo guards the one transform that rewrites
// rows behind the memos' backs.
func TestNormalizedPermuteUsersDropsMemo(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	m := randomMatrix(rng, 10, 6, 3, 0.9)
	m.Normalized()
	p := m.PermuteUsers(rng.Perm(10))
	_, crow, ccol := p.Normalized()
	wantRow, wantCol := scratchNormalized(p)
	if !csrBitwiseEqual(crow, wantRow) || !csrBitwiseEqual(ccol, wantCol) {
		t.Fatal("PermuteUsers served a stale normalized memo")
	}
}

// TestNormalizedDelta pins the perturbation-support contract certification
// builds on: the first derivation is Full, an unchanged matrix yields the
// zero delta, writes surface exactly the touched rows and scale-changed
// columns, and the returned slices survive later write bursts (no aliasing
// of the memo's dirty buffers).
func TestNormalizedDelta(t *testing.T) {
	m := New(4, 3, 3)
	m.SetAnswer(0, 0, 1)
	m.SetAnswer(1, 0, 1)
	m.SetAnswer(2, 1, 2)
	m.SetAnswer(3, 2, 0)

	_, _, _, d := m.NormalizedDelta()
	if !d.Full || d.Rows != nil || d.Cols != nil {
		t.Fatalf("first derivation: got %+v, want Full with no support", d)
	}
	if _, _, _, d = m.NormalizedDelta(); d.Full || len(d.Rows) != 0 || len(d.Cols) != 0 {
		t.Fatalf("unchanged matrix: got %+v, want zero delta", d)
	}

	// User 2 moves item 1 from option 2 to option 0, user 3 retracts item 2:
	// rows {2, 3}; the sums of item 1's options 0 and 2 and item 2's option 0
	// all change.
	m.SetAnswer(2, 1, 0)
	m.SetAnswer(3, 2, Unanswered)
	c, _, _, d := m.NormalizedDelta()
	if d.Full {
		t.Fatal("write burst must take the delta path")
	}
	if !intsEqual(d.Rows, []int{2, 3}) {
		t.Fatalf("delta rows %v, want [2 3]", d.Rows)
	}
	wantCols := []int{m.Column(1, 0), m.Column(1, 2), m.Column(2, 0)}
	sort.Ints(wantCols)
	if !intsEqual(d.Cols, wantCols) {
		t.Fatalf("delta cols %v, want %v", d.Cols, wantCols)
	}
	if c != m.Binary() {
		t.Fatal("NormalizedDelta must return the current encoding")
	}

	// A rewrite of the same value is still a dirty row, but no column sum
	// moves — and the previous delta's slices must be unaffected by it.
	rows, cols := d.Rows, d.Cols
	m.SetAnswer(2, 1, 0)
	if _, _, _, d = m.NormalizedDelta(); !intsEqual(d.Rows, []int{2}) || len(d.Cols) != 0 {
		t.Fatalf("idempotent rewrite: got %+v, want rows [2] and no cols", d)
	}
	if !intsEqual(rows, []int{2, 3}) || !intsEqual(cols, wantCols) {
		t.Fatalf("earlier delta mutated: rows %v cols %v", rows, cols)
	}

	// A memo reset (PermuteUsers clone) starts over with a Full derivation.
	p := m.PermuteUsers([]int{1, 0, 2, 3})
	if _, _, _, d = p.NormalizedDelta(); !d.Full {
		t.Fatal("post-PermuteUsers derivation must report Full")
	}
}
