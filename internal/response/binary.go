package response

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// The binary snapshot codec serializes a Matrix as a compact, versioned,
// checksummed blob — the format the durability layer's generation-stamped
// snapshots use. WriteCSV/ReadCSV remain the human-readable reference
// encoding; the two agree on content (see the shared codec fixtures in the
// tests), but only the binary form carries the write-generation counter,
// which recovery needs to know where WAL replay must resume.
//
// Layout (all integers unsigned varints unless noted):
//
//	magic   "HNDSNAP1" (8 bytes)
//	users, items
//	options[items]
//	generation
//	choices[users*items], each encoded as choice+1 (0 = Unanswered)
//	crc     CRC32-C over everything above (4 bytes little-endian)
//
// The trailing checksum covers the whole blob, so a torn or bit-flipped
// snapshot is detected before any of its content is trusted.

// binaryMagic identifies (and versions) the binary snapshot format; bump
// the trailing digit on any incompatible layout change.
const binaryMagic = "HNDSNAP1"

// crcTable is the Castagnoli polynomial table shared by the snapshot and
// WAL framing checksums.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// maxSnapshotCells bounds users*items on read, so a corrupted header that
// survives long enough to be parsed can never drive a huge allocation.
// (In practice corruption is caught by the checksum first: ReadBinary
// verifies the CRC over the raw bytes before parsing anything.)
const maxSnapshotCells = 1 << 32

// WriteBinary serializes m in the binary snapshot format, including the
// current write generation. The encoding is deterministic: equal matrices
// at equal generations produce identical bytes.
func (m *Matrix) WriteBinary(w io.Writer) error {
	crc := crc32.New(crcTable)
	out := io.MultiWriter(w, crc)

	if _, err := out.Write([]byte(binaryMagic)); err != nil {
		return fmt.Errorf("response: write snapshot magic: %w", err)
	}
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := out.Write(buf[:n])
		return err
	}
	m.binMu.Lock()
	gen := m.gen
	m.binMu.Unlock()
	if err := put(uint64(m.users)); err != nil {
		return fmt.Errorf("response: write snapshot header: %w", err)
	}
	if err := put(uint64(m.items)); err != nil {
		return fmt.Errorf("response: write snapshot header: %w", err)
	}
	for _, k := range m.options {
		if err := put(uint64(k)); err != nil {
			return fmt.Errorf("response: write snapshot options: %w", err)
		}
	}
	if err := put(gen); err != nil {
		return fmt.Errorf("response: write snapshot generation: %w", err)
	}
	for _, h := range m.choices {
		if err := put(uint64(h + 1)); err != nil { // Unanswered (-1) → 0
			return fmt.Errorf("response: write snapshot choices: %w", err)
		}
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc.Sum32())
	if _, err := w.Write(trailer[:]); err != nil {
		return fmt.Errorf("response: write snapshot checksum: %w", err)
	}
	return nil
}

// ReadBinary parses the format produced by WriteBinary, restoring the
// matrix content and its write generation. The whole blob is read and its
// checksum verified before any of it is parsed, so a corrupt snapshot
// fails loudly instead of yielding a plausible-but-wrong matrix.
func ReadBinary(r io.Reader) (*Matrix, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("response: read snapshot: %w", err)
	}
	if len(raw) < len(binaryMagic)+4 {
		return nil, fmt.Errorf("response: snapshot too short (%d bytes)", len(raw))
	}
	if string(raw[:len(binaryMagic)]) != binaryMagic {
		return nil, fmt.Errorf("response: bad snapshot magic %q", raw[:len(binaryMagic)])
	}
	body, trailer := raw[:len(raw)-4], raw[len(raw)-4:]
	want := binary.LittleEndian.Uint32(trailer)
	if got := crc32.Checksum(body, crcTable); got != want {
		return nil, fmt.Errorf("response: snapshot checksum mismatch (got %08x, want %08x)", got, want)
	}

	p := body[len(binaryMagic):]
	next := func(what string) (uint64, error) {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return 0, fmt.Errorf("response: snapshot truncated reading %s", what)
		}
		p = p[n:]
		return v, nil
	}
	users, err := next("users")
	if err != nil {
		return nil, err
	}
	items, err := next("items")
	if err != nil {
		return nil, err
	}
	if users == 0 || items == 0 || users > 1<<31 || items > 1<<31 || users*items > maxSnapshotCells {
		return nil, fmt.Errorf("response: snapshot declares invalid shape %d×%d", users, items)
	}
	options := make([]int, items)
	for i := range options {
		k, err := next("options")
		if err != nil {
			return nil, err
		}
		if k < 1 || k > maxSnapshotCells {
			return nil, fmt.Errorf("response: snapshot item %d declares %d options", i, k)
		}
		options[i] = int(k)
	}
	gen, err := next("generation")
	if err != nil {
		return nil, err
	}
	m := New(int(users), int(items), options...)
	for c := range m.choices {
		v, err := next("choices")
		if err != nil {
			return nil, err
		}
		if v == 0 {
			continue // Unanswered, already the New default
		}
		h := int(v - 1)
		i := c % m.items
		if h >= m.options[i] {
			return nil, fmt.Errorf("response: snapshot cell %d option %d out of range [0,%d)", c, h, m.options[i])
		}
		m.choices[c] = h
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("response: snapshot has %d trailing bytes", len(p))
	}
	m.gen = gen
	return m, nil
}
