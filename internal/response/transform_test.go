package response

import (
	"math/rand"
	"testing"
)

func randomMatrix(rng *rand.Rand, users, items, k int, p float64) *Matrix {
	m := New(users, items, k)
	for u := 0; u < users; u++ {
		for i := 0; i < items; i++ {
			if rng.Float64() < p {
				m.SetAnswer(u, i, rng.Intn(k))
			}
		}
	}
	return m
}

func TestPruneUnchosenOptions(t *testing.T) {
	m := New(3, 2, 4)
	m.SetAnswer(0, 0, 0)
	m.SetAnswer(1, 0, 3)
	m.SetAnswer(2, 1, 1)
	p := m.PruneUnchosenOptions()
	if p.OptionCount(0) != 2 || p.OptionCount(1) != 1 {
		t.Fatalf("pruned counts %d, %d", p.OptionCount(0), p.OptionCount(1))
	}
	// Option 3 of item 0 became option 1.
	if p.Answer(1, 0) != 1 {
		t.Fatalf("remapped answer %d", p.Answer(1, 0))
	}
	if p.Answer(0, 0) != 0 {
		t.Fatal("first option should stay 0")
	}
}

func TestPruneKeepsAnswerSets(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomMatrix(rng, 10, 8, 5, 0.6)
	p := m.PruneUnchosenOptions()
	// Same users answer the same items; co-answer structure preserved.
	for u := 0; u < 10; u++ {
		for i := 0; i < 8; i++ {
			if (m.Answer(u, i) == Unanswered) != (p.Answer(u, i) == Unanswered) {
				t.Fatal("answeredness changed")
			}
		}
	}
	// Every remaining option is chosen at least once.
	for i := 0; i < p.Items(); i++ {
		counts := p.OptionCounts(i)
		total := 0
		for _, c := range counts {
			total += c
		}
		if total == 0 {
			continue // fully silent item keeps its dummy option
		}
		for h, c := range counts {
			if c == 0 {
				t.Fatalf("item %d option %d still unchosen", i, h)
			}
		}
	}
}

func TestPadToEqualRowSums(t *testing.T) {
	m := New(3, 3, 2)
	m.SetAnswer(0, 0, 0)
	m.SetAnswer(0, 1, 1)
	m.SetAnswer(0, 2, 0)
	m.SetAnswer(1, 0, 1)
	// user 2 answers nothing.
	p := m.PadToEqualRowSums()
	for u := 0; u < 3; u++ {
		if p.AnswerCount(u) != 3 {
			t.Fatalf("user %d padded count %d", u, p.AnswerCount(u))
		}
	}
	// Original answers intact.
	if p.Answer(0, 1) != 1 || p.Answer(1, 0) != 1 {
		t.Fatal("original answers lost")
	}
	// Dummy items have exactly one respondent each.
	for i := m.Items(); i < p.Items(); i++ {
		counts := p.OptionCounts(i)
		if len(counts) != 1 || counts[0] != 1 {
			t.Fatalf("dummy item %d counts %v", i, counts)
		}
	}
}

func TestPadNoOpWhenEqual(t *testing.T) {
	m := New(2, 2, 2)
	for u := 0; u < 2; u++ {
		for i := 0; i < 2; i++ {
			m.SetAnswer(u, i, 0)
		}
	}
	p := m.PadToEqualRowSums()
	if p.Items() != 2 {
		t.Fatalf("no-op pad added items: %d", p.Items())
	}
}

func TestComponents(t *testing.T) {
	m := New(5, 2, 2)
	// Users 0,1 share item 0 option 0; users 2,3 share item 1 option 1;
	// user 4 silent.
	m.SetAnswer(0, 0, 0)
	m.SetAnswer(1, 0, 0)
	m.SetAnswer(2, 1, 1)
	m.SetAnswer(3, 1, 1)
	comps := m.Components()
	if len(comps) != 3 {
		t.Fatalf("components %v", comps)
	}
	if comps[0][0] != 0 || comps[0][1] != 1 || comps[1][0] != 2 || comps[1][1] != 3 {
		t.Fatalf("component grouping %v", comps)
	}
	if len(comps[2]) != 1 || comps[2][0] != 4 {
		t.Fatalf("silent user component %v", comps[2])
	}
}

func TestComponentsSingleWhenConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randomMatrix(rng, 20, 10, 3, 1)
	comps := m.Components()
	// Fully answered matrices are almost surely connected via shared
	// options; verify consistency with IsConnected.
	if (len(comps) == 1) != m.IsConnected() {
		t.Fatalf("Components (%d) disagrees with IsConnected (%v)", len(comps), m.IsConnected())
	}
}

func TestSubset(t *testing.T) {
	m := New(4, 2, 3)
	m.SetAnswer(2, 0, 1)
	m.SetAnswer(3, 1, 2)
	s := m.Subset([]int{3, 2})
	if s.Users() != 2 {
		t.Fatalf("subset users %d", s.Users())
	}
	if s.Answer(0, 1) != 2 || s.Answer(1, 0) != 1 {
		t.Fatal("subset answers wrong")
	}
}

func TestSubsetEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2, 2).Subset(nil)
}
