package response

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV serializes m as CSV: a header row "item0,item1,..." listing each
// item's option count, followed by one row per user containing the chosen
// option index per item. Unanswered items are written as "-" (an empty cell
// is also accepted on read; "-" is emitted because a row of empty cells in
// a single-item matrix would serialize to a blank line, which CSV readers
// skip).
func (m *Matrix) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, m.items)
	for i := range header {
		header[i] = strconv.Itoa(m.options[i])
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("response: write header: %w", err)
	}
	row := make([]string, m.items)
	for u := 0; u < m.users; u++ {
		for i := 0; i < m.items; i++ {
			if h := m.Answer(u, i); h == Unanswered {
				row[i] = "-"
			} else {
				row[i] = strconv.Itoa(h)
			}
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("response: write user %d: %w", u, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses the format produced by WriteCSV.
func ReadCSV(r io.Reader) (*Matrix, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("response: read csv: %w", err)
	}
	if len(records) < 2 {
		return nil, fmt.Errorf("response: csv needs a header and at least one user row, got %d rows", len(records))
	}
	header := records[0]
	options := make([]int, len(header))
	for i, cell := range header {
		k, err := strconv.Atoi(cell)
		if err != nil {
			return nil, fmt.Errorf("response: header cell %d %q: %w", i, cell, err)
		}
		if k < 1 {
			return nil, fmt.Errorf("response: header cell %d declares %d options, need at least 1", i, k)
		}
		options[i] = k
	}
	m := New(len(records)-1, len(header), options...)
	for u, row := range records[1:] {
		if len(row) != len(header) {
			return nil, fmt.Errorf("response: user row %d has %d cells, want %d", u, len(row), len(header))
		}
		for i, cell := range row {
			if cell == "" || cell == "-" {
				continue
			}
			h, err := strconv.Atoi(cell)
			if err != nil {
				return nil, fmt.Errorf("response: row %d cell %d %q: %w", u, i, cell, err)
			}
			if h < 0 || h >= options[i] {
				return nil, fmt.Errorf("response: row %d item %d option %d out of range [0,%d)", u, i, h, options[i])
			}
			m.SetAnswer(u, i, h)
		}
	}
	return m, nil
}
