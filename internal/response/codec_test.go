package response

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// codecFixtures are the edge-case matrices both serialization paths — the
// human-readable CSV reference and the binary snapshot codec — must round
// trip identically: zero-answer users, single-item matrices, Unanswered
// cells mixed with answers, and matrices carrying post-SetAnswer dirty
// memo state (the snapshot must capture content, not memo internals).
func codecFixtures(t *testing.T) map[string]*Matrix {
	t.Helper()
	fixtures := make(map[string]*Matrix)

	empty := New(3, 2, 4)
	fixtures["all-unanswered"] = empty

	single := New(4, 1, 3)
	single.SetAnswer(0, 0, 2)
	single.SetAnswer(2, 0, 0)
	fixtures["single-item"] = single

	sparse := New(5, 3, 2, 3, 4)
	sparse.SetAnswer(0, 0, 1)
	sparse.SetAnswer(0, 2, 3)
	sparse.SetAnswer(3, 1, 0)
	// Users 1, 2 and 4 answer nothing.
	fixtures["zero-answer-users"] = sparse

	retracted := New(3, 3, 3)
	for u := 0; u < 3; u++ {
		for i := 0; i < 3; i++ {
			retracted.SetAnswer(u, i, (u+i)%3)
		}
	}
	retracted.SetAnswer(1, 1, Unanswered)
	fixtures["retracted-cells"] = retracted

	// Dirty memo state: encode, then overwrite rows so the memoized CSR
	// lags the choices and the dirty list is non-empty at serialization
	// time. The codecs must serialize the live choices, not the memo.
	dirty := New(4, 2, 3)
	dirty.SetAnswer(0, 0, 1)
	dirty.SetAnswer(1, 1, 2)
	dirty.Binary()
	dirty.Normalized()
	dirty.SetAnswer(0, 0, 2)
	dirty.SetAnswer(3, 1, 0)
	fixtures["post-setanswer-dirty"] = dirty

	return fixtures
}

// sameContent fails t unless a and b agree on geometry and every choice.
func sameContent(t *testing.T, name string, a, b *Matrix) {
	t.Helper()
	if a.Users() != b.Users() || a.Items() != b.Items() {
		t.Fatalf("%s: shape %dx%d != %dx%d", name, a.Users(), a.Items(), b.Users(), b.Items())
	}
	for i := 0; i < a.Items(); i++ {
		if a.OptionCount(i) != b.OptionCount(i) {
			t.Fatalf("%s: item %d options %d != %d", name, i, a.OptionCount(i), b.OptionCount(i))
		}
	}
	for u := 0; u < a.Users(); u++ {
		for i := 0; i < a.Items(); i++ {
			if a.Answer(u, i) != b.Answer(u, i) {
				t.Fatalf("%s: cell (%d,%d) %d != %d", name, u, i, a.Answer(u, i), b.Answer(u, i))
			}
		}
	}
}

// sameCSR fails t unless the two CSRs are bitwise identical in content.
func sameCSR(t *testing.T, name string, a, b interface {
	Rows() int
	Cols() int
	RowNNZ(int) ([]int, []float64)
}) {
	t.Helper()
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		t.Fatalf("%s: CSR shape mismatch", name)
	}
	for r := 0; r < a.Rows(); r++ {
		ca, va := a.RowNNZ(r)
		cb, vb := b.RowNNZ(r)
		if len(ca) != len(cb) {
			t.Fatalf("%s: row %d nnz %d != %d", name, r, len(ca), len(cb))
		}
		for k := range ca {
			if ca[k] != cb[k] || math.Float64bits(va[k]) != math.Float64bits(vb[k]) {
				t.Fatalf("%s: row %d entry %d differs", name, r, k)
			}
		}
	}
}

// TestCSVRoundTripEdgeCases round-trips every codec fixture through the
// CSV reference path and checks content equality. (CSV does not carry the
// generation counter; that is the binary codec's contract.)
func TestCSVRoundTripEdgeCases(t *testing.T) {
	for name, m := range codecFixtures(t) {
		var buf bytes.Buffer
		if err := m.WriteCSV(&buf); err != nil {
			t.Fatalf("%s: WriteCSV: %v", name, err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("%s: ReadCSV: %v", name, err)
		}
		sameContent(t, name, m, back)
	}
}

// TestBinaryRoundTrip round-trips every codec fixture through the binary
// snapshot codec and checks content, generation, and that the derived
// one-hot/normalized forms of the restored matrix are bitwise identical to
// the original's — the property snapshot recovery relies on.
func TestBinaryRoundTrip(t *testing.T) {
	for name, m := range codecFixtures(t) {
		var buf bytes.Buffer
		if err := m.WriteBinary(&buf); err != nil {
			t.Fatalf("%s: WriteBinary: %v", name, err)
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("%s: ReadBinary: %v", name, err)
		}
		sameContent(t, name, m, back)
		if back.Generation() != m.Generation() {
			t.Fatalf("%s: generation %d != %d", name, back.Generation(), m.Generation())
		}
		sameCSR(t, name+"/binary", m.Binary(), back.Binary())
		_, crow, ccol := m.Normalized()
		_, brow, bcol := back.Normalized()
		sameCSR(t, name+"/crow", crow, brow)
		sameCSR(t, name+"/ccol", ccol, bcol)
	}
}

// TestBinaryAgreesWithCSV pins the two codecs to each other: for every
// fixture, decoding the CSV form and decoding the binary form yield the
// same matrix content.
func TestBinaryAgreesWithCSV(t *testing.T) {
	for name, m := range codecFixtures(t) {
		var cbuf, bbuf bytes.Buffer
		if err := m.WriteCSV(&cbuf); err != nil {
			t.Fatal(err)
		}
		if err := m.WriteBinary(&bbuf); err != nil {
			t.Fatal(err)
		}
		fromCSV, err := ReadCSV(&cbuf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fromBin, err := ReadBinary(&bbuf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sameContent(t, name, fromCSV, fromBin)
	}
}

// TestBinaryDetectsCorruption flips single bytes across an encoded
// snapshot and asserts every corruption is rejected (checksum, magic, or
// structural validation) — never silently decoded.
func TestBinaryDetectsCorruption(t *testing.T) {
	m := codecFixtures(t)["retracted-cells"]
	var buf bytes.Buffer
	if err := m.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	for pos := 0; pos < len(blob); pos++ {
		corrupt := append([]byte(nil), blob...)
		corrupt[pos] ^= 0x41
		if _, err := ReadBinary(bytes.NewReader(corrupt)); err == nil {
			t.Fatalf("byte %d corrupted yet snapshot decoded", pos)
		}
	}
	for cut := 1; cut < len(blob); cut++ {
		if _, err := ReadBinary(bytes.NewReader(blob[:cut])); err == nil {
			t.Fatalf("snapshot truncated to %d bytes yet decoded", cut)
		}
	}
}

// TestBinaryRejectsGarbage covers the parser's structural guards directly.
func TestBinaryRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"HNDSNAP1",
		"NOTASNAP00000000",
		strings.Repeat("x", 64),
	}
	for _, in := range cases {
		if _, err := ReadBinary(strings.NewReader(in)); err == nil {
			t.Fatalf("garbage %q decoded", in)
		}
	}
}
