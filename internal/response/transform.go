package response

import "sort"

// PruneUnchosenOptions returns a copy of m in which options chosen by
// nobody are removed from their items (the WLOG assumption of the paper's
// Appendix B proofs: empty columns carry no information). Items where no
// option remains keep a single dummy option. Answers are renumbered
// accordingly.
func (m *Matrix) PruneUnchosenOptions() *Matrix {
	newCounts := make([]int, m.items)
	remap := make([][]int, m.items) // old option -> new option or -1
	for i := 0; i < m.items; i++ {
		counts := m.OptionCounts(i)
		remap[i] = make([]int, m.options[i])
		next := 0
		for h, c := range counts {
			if c > 0 {
				remap[i][h] = next
				next++
			} else {
				remap[i][h] = -1
			}
		}
		if next == 0 {
			next = 1 // keep the item representable
		}
		newCounts[i] = next
	}
	out := New(m.users, m.items, newCounts...)
	for u := 0; u < m.users; u++ {
		for i := 0; i < m.items; i++ {
			if h := m.Answer(u, i); h != Unanswered {
				out.SetAnswer(u, i, remap[i][h])
			}
		}
	}
	return out
}

// PadToEqualRowSums returns a copy of m extended with single-answer dummy
// items so that every user has the same number of answers — the equal-row-
// sum normalization used by the paper's Lemmas 5–7. Each added item has one
// option answered by exactly one user, which cannot break the consecutive
// ones property.
func (m *Matrix) PadToEqualRowSums() *Matrix {
	maxCount := 0
	counts := make([]int, m.users)
	for u := 0; u < m.users; u++ {
		counts[u] = m.AnswerCount(u)
		if counts[u] > maxCount {
			maxCount = counts[u]
		}
	}
	var extra int
	for _, c := range counts {
		extra += maxCount - c
	}
	if extra == 0 {
		return m.Clone()
	}
	newOptions := append([]int(nil), m.options...)
	for j := 0; j < extra; j++ {
		newOptions = append(newOptions, 1)
	}
	out := New(m.users, m.items+extra, newOptions...)
	for u := 0; u < m.users; u++ {
		for i := 0; i < m.items; i++ {
			if h := m.Answer(u, i); h != Unanswered {
				out.SetAnswer(u, i, h)
			}
		}
	}
	next := m.items
	for u := 0; u < m.users; u++ {
		for j := counts[u]; j < maxCount; j++ {
			out.SetAnswer(u, next, 0)
			next++
		}
	}
	return out
}

// Components returns the connected components of the user-option bipartite
// graph as sorted user-index groups; users with no answers form singleton
// groups at the end. Spectral rankings are only comparable within a
// component.
func (m *Matrix) Components() [][]int {
	total := m.users + m.TotalOptions()
	uf := newUnionFind(total)
	for u := 0; u < m.users; u++ {
		for i := 0; i < m.items; i++ {
			if h := m.Answer(u, i); h != Unanswered {
				uf.union(u, m.users+m.Column(i, h))
			}
		}
	}
	groups := map[int][]int{}
	var silent [][]int
	for u := 0; u < m.users; u++ {
		if m.AnswerCount(u) == 0 {
			silent = append(silent, []int{u})
			continue
		}
		r := uf.find(u)
		groups[r] = append(groups[r], u)
	}
	out := make([][]int, 0, len(groups)+len(silent))
	for _, g := range groups {
		sort.Ints(g)
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return append(out, silent...)
}

// Subset returns a new matrix containing only the given users (in the
// given order), with the same items and option counts.
func (m *Matrix) Subset(users []int) *Matrix {
	if len(users) == 0 {
		panic("response: Subset needs at least one user")
	}
	out := New(len(users), m.items, m.options...)
	for nu, u := range users {
		for i := 0; i < m.items; i++ {
			out.SetAnswer(nu, i, m.Answer(u, i))
		}
	}
	return out
}
