// Package response models the input of the ability discovery problem: the
// choices of m users over n heterogeneous multiple-choice items, and the
// derived (m × kn) one-hot binary response matrix C of the paper together
// with its row- and column-normalized forms.
package response

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"hitsndiffs/internal/mat"
)

// Unanswered marks an item a user did not answer.
const Unanswered = -1

// Matrix holds the responses of m users to n items. Each item i has
// OptionCount(i) options numbered from 0. Option 0 is, by generator
// convention, the best-fitting option, but nothing in the algorithms relies
// on that: they see only the one-hot encoding.
type Matrix struct {
	users   int
	items   int
	options []int // options[i] = number of options of item i
	offsets []int // offsets[i] = first column of item i in the flat encoding
	choices []int // users×items row-major; Unanswered for no response

	// binMu guards the memoized one-hot CSR encoding and its delta state
	// below. Concurrent readers of an otherwise-immutable Matrix (e.g.
	// several Engine ranks on one snapshot) share a single build.
	binMu sync.Mutex
	// bin is the memoized one-hot CSR. It is immutable once published:
	// SetAnswer never touches it (it only records the written row in dirty),
	// and a delta rebuild swaps in a freshly assembled CSR instead of
	// patching in place — so a clone or snapshot sharing the pointer can
	// never observe a partial rebuild.
	bin *mat.CSR
	// dirty lists the user rows written since bin was assembled (append
	// order, duplicates allowed; sorted and deduplicated at rebuild). The
	// next Binary() call re-encodes only these rows and bulk-copies the
	// rest (see mat.ReplaceRows), which is what makes a single-user write
	// cheap to absorb under sparse write traffic.
	dirty []int
	// gen counts every SetAnswer — the freshness key per-tenant result
	// caches use (see Generation).
	gen uint64
	// fullBuilds and deltaBuilds count how often Binary() assembled the
	// CSR from scratch vs. by touched-rows rebuild (see CSRRebuilds).
	fullBuilds, deltaBuilds uint64

	// crow and ccol memoize the row- and column-normalized forms of bin
	// (see Normalized). Like bin they are immutable once published: a
	// refresh splices new CSRs and swaps, never patches.
	crow, ccol *mat.CSR
	// normBase is the bin the normalized memo was derived from; the memo is
	// fresh exactly when normBase is the current bin.
	normBase *mat.CSR
	// colSums holds the per-column sums of normBase, maintained
	// incrementally (one-hot counts, so the arithmetic is exact). The slice
	// is immutable once published — refreshes swap in a copy — so clones
	// may share it.
	colSums mat.Vector
	// normDirty lists the user rows written since crow/ccol were built
	// (append order, duplicates allowed). It can lag dirty: Binary() may
	// splice bin several times between Normalized() calls, and normDirty
	// accumulates the union.
	normDirty []int
	// normFull and normDelta count from-scratch vs. spliced normalization
	// rebuilds (see NormRebuilds).
	normFull, normDelta uint64
}

// New creates an empty response matrix for m users, n items, and the given
// per-item option counts. A single int may be passed to give every item the
// same number of options.
func New(users, items int, options ...int) *Matrix {
	if users <= 0 || items <= 0 {
		panic(fmt.Sprintf("response: New invalid shape %d users × %d items", users, items))
	}
	var per []int
	switch len(options) {
	case 1:
		per = make([]int, items)
		for i := range per {
			per[i] = options[0]
		}
	case 0:
		panic("response: New requires at least one option count")
	default:
		if len(options) != items {
			panic(fmt.Sprintf("response: New got %d option counts for %d items", len(options), items))
		}
		per = append([]int(nil), options...)
	}
	offsets := make([]int, items+1)
	for i, k := range per {
		if k < 1 {
			panic(fmt.Sprintf("response: item %d has %d options", i, k))
		}
		offsets[i+1] = offsets[i] + k
	}
	choices := make([]int, users*items)
	for i := range choices {
		choices[i] = Unanswered
	}
	return &Matrix{users: users, items: items, options: per, offsets: offsets, choices: choices}
}

// FromChoices builds a response matrix from a users×items table of option
// indices (Unanswered allowed), inferring each item's option count as one
// more than the maximum observed index, with a floor of minOptions.
func FromChoices(choices [][]int, minOptions int) *Matrix {
	if len(choices) == 0 || len(choices[0]) == 0 {
		panic("response: FromChoices empty input")
	}
	users, items := len(choices), len(choices[0])
	per := make([]int, items)
	for i := range per {
		per[i] = minOptions
	}
	for u, row := range choices {
		if len(row) != items {
			panic(fmt.Sprintf("response: FromChoices ragged row %d", u))
		}
		for i, c := range row {
			if c != Unanswered && c+1 > per[i] {
				per[i] = c + 1
			}
		}
	}
	m := New(users, items, per...)
	for u, row := range choices {
		for i, c := range row {
			if c != Unanswered {
				m.SetAnswer(u, i, c)
			}
		}
	}
	return m
}

// Users returns the number of users m.
func (m *Matrix) Users() int { return m.users }

// Items returns the number of items n.
func (m *Matrix) Items() int { return m.items }

// OptionCount returns the number of options of item i.
func (m *Matrix) OptionCount(i int) int { return m.options[i] }

// TotalOptions returns the width of the flat one-hot encoding (Σᵢ kᵢ).
func (m *Matrix) TotalOptions() int { return m.offsets[m.items] }

// MaxOptions returns k, the largest option count over all items.
func (m *Matrix) MaxOptions() int {
	k := 0
	for _, v := range m.options {
		if v > k {
			k = v
		}
	}
	return k
}

// Column returns the flat column index of option h of item i.
func (m *Matrix) Column(item, option int) int {
	if option < 0 || option >= m.options[item] {
		panic(fmt.Sprintf("response: item %d has no option %d", item, option))
	}
	return m.offsets[item] + option
}

// SetAnswer records that user u chose option h for item i. Passing
// Unanswered clears the response. A write does not discard the memoized
// one-hot CSR: it marks row u dirty, and the next Binary() call rebuilds
// only the touched rows.
func (m *Matrix) SetAnswer(u, i, h int) {
	if h != Unanswered && (h < 0 || h >= m.options[i]) {
		panic(fmt.Sprintf("response: SetAnswer option %d out of range for item %d (k=%d)", h, i, m.options[i]))
	}
	m.choices[u*m.items+i] = h
	m.binMu.Lock()
	m.gen++
	if m.bin != nil {
		m.dirty = append(m.dirty, u)
	}
	if m.crow != nil {
		m.normDirty = append(m.normDirty, u)
	}
	m.binMu.Unlock()
}

// Generation returns a counter bumped by every SetAnswer. It is the
// freshness key for result caches over caller-owned matrices (equal
// generations on the same Matrix imply identical responses); a Clone
// starts from its parent's generation.
func (m *Matrix) Generation() uint64 {
	m.binMu.Lock()
	defer m.binMu.Unlock()
	return m.gen
}

// CSRRebuilds reports how many times Binary() assembled the memoized
// one-hot CSR from scratch (full) and how many times it rebuilt only the
// rows touched since the previous build (delta). Clones inherit their
// parent's counts, so the pair is a cumulative observability signal for a
// copy-on-write engine matrix: under sparse write traffic, full must stop
// growing after the first build while delta tracks the write rate.
func (m *Matrix) CSRRebuilds() (full, delta uint64) {
	m.binMu.Lock()
	defer m.binMu.Unlock()
	return m.fullBuilds, m.deltaBuilds
}

// Answer returns the option user u chose for item i, or Unanswered.
func (m *Matrix) Answer(u, i int) int { return m.choices[u*m.items+i] }

// AnswerCount returns the number of items user u answered.
func (m *Matrix) AnswerCount(u int) int {
	c := 0
	for i := 0; i < m.items; i++ {
		if m.Answer(u, i) != Unanswered {
			c++
		}
	}
	return c
}

// Clone returns a deep copy of m. The memoized one-hot CSR travels with
// the clone: the memo is immutable by construction (delta rebuilds swap,
// never patch), so parent and clone can share it safely, and a clone taken
// by a copy-on-write engine pays only a touched-rows rebuild on its next
// Binary() instead of a from-scratch assembly. Pending dirty rows and the
// generation counter travel too.
func (m *Matrix) Clone() *Matrix {
	out := &Matrix{
		users:   m.users,
		items:   m.items,
		options: append([]int(nil), m.options...),
		offsets: append([]int(nil), m.offsets...),
		choices: append([]int(nil), m.choices...),
	}
	m.binMu.Lock()
	out.bin = m.bin
	if len(m.dirty) > 0 {
		out.dirty = append([]int(nil), m.dirty...)
	}
	out.gen = m.gen
	out.fullBuilds, out.deltaBuilds = m.fullBuilds, m.deltaBuilds
	// The normalized memo travels too: crow/ccol/colSums are immutable by
	// the swap protocol, so parent and clone share them, and the clone's
	// next Normalized() pays a touched-rows splice instead of a from-scratch
	// normalization.
	out.crow, out.ccol, out.normBase = m.crow, m.ccol, m.normBase
	out.colSums = m.colSums
	if len(m.normDirty) > 0 {
		out.normDirty = append([]int(nil), m.normDirty...)
	}
	out.normFull, out.normDelta = m.normFull, m.normDelta
	m.binMu.Unlock()
	return out
}

// Binary returns the (m × Σkᵢ) one-hot CSR response matrix C of the paper.
// The encoding is memoized, so repeated solves on an unchanged matrix
// (Engine re-ranks, method comparisons) build it once; callers must treat
// the returned CSR as read-only. After writes, only the touched user rows
// are re-encoded — the remaining rows are bulk-copied from the previous
// memo — and the rebuild swaps in a new CSR, so any previously returned
// encoding stays valid and fully consistent forever.
func (m *Matrix) Binary() *mat.CSR {
	m.binMu.Lock()
	defer m.binMu.Unlock()
	return m.binaryLocked()
}

// binaryLocked is Binary's body; callers hold binMu.
func (m *Matrix) binaryLocked() *mat.CSR {
	if m.bin != nil && len(m.dirty) == 0 {
		return m.bin
	}
	if m.bin == nil {
		m.fullBuilds++
		entries := make([]mat.Coord, 0, m.users*m.items)
		for u := 0; u < m.users; u++ {
			for i := 0; i < m.items; i++ {
				if h := m.Answer(u, i); h != Unanswered {
					entries = append(entries, mat.Coord{Row: u, Col: m.Column(i, h), Val: 1})
				}
			}
		}
		m.bin = mat.NewCSR(m.users, m.TotalOptions(), entries)
		m.dirty = m.dirty[:0] // keep the capacity for the next write burst
		return m.bin
	}
	m.deltaBuilds++
	rows := sortDedup(m.dirty)
	// Item offsets grow with the item index, so emitting in item order
	// satisfies ReplaceRows' increasing-column contract.
	m.bin = m.bin.ReplaceRows(rows, func(u int, emit func(col int, val float64)) {
		for i := 0; i < m.items; i++ {
			if h := m.Answer(u, i); h != Unanswered {
				emit(m.Column(i, h), 1)
			}
		}
	})
	m.dirty = m.dirty[:0] // keep the capacity for the next write burst
	return m.bin
}

// sortDedup sorts an index list (dirty rows, candidate columns) ascending
// and removes duplicates, in place — the shape mat.ReplaceRows and the
// normalization splices require.
func sortDedup(rows []int) []int {
	sort.Ints(rows)
	out := rows[:0]
	for i, r := range rows {
		if i == 0 || r != rows[i-1] {
			out = append(out, r)
		}
	}
	return out
}

// Normalized returns the one-hot CSR encoding C together with its row- and
// column-normalized forms C_row and C_col — the operands of the AVGHITS
// update machinery — as one consistent triple for the current generation.
// All three are memoized: repeated calls on an unchanged matrix return the
// same pointers, and after writes only the touched rows (and the affected
// columns' scale factors) are recomputed by splicing into fresh CSRs
// (mat.ReplaceRowsNormalized / mat.ReplaceRowsColNormalized), bitwise
// identical to from-scratch normalization. Like Binary, refreshes swap and
// never patch, so previously returned forms stay valid and fully consistent
// forever; callers must treat all three as read-only.
func (m *Matrix) Normalized() (c, crow, ccol *mat.CSR) {
	m.binMu.Lock()
	defer m.binMu.Unlock()
	c, crow, ccol, _ = m.normalizedLocked()
	return c, crow, ccol
}

// NormDelta describes what changed between two consecutive Normalized-family
// calls: the perturbation support that certified warm updates restrict their
// residual screen to. Full marks a from-scratch derivation (first build, or a
// memo reset such as PermuteUsers) where no meaningful support exists; when
// Full is false, Rows lists the user rows rewritten since the previous call
// and Cols the option columns whose normalization scale actually changed
// (bitwise, on the column-sum vector). A call on an unchanged matrix yields
// the zero NormDelta.
type NormDelta struct {
	// Full reports a from-scratch derivation with no delta support.
	Full bool
	// Rows lists the rewritten user rows, sorted ascending, deduplicated.
	Rows []int
	// Cols lists the columns whose scale factors changed, sorted ascending.
	Cols []int
}

// NormalizedDelta is Normalized plus the NormDelta describing what this call
// recomputed. The returned slices are the caller's to keep: they do not alias
// the memo's internal dirty buffers.
func (m *Matrix) NormalizedDelta() (c, crow, ccol *mat.CSR, d NormDelta) {
	m.binMu.Lock()
	defer m.binMu.Unlock()
	c, crow, ccol, d = m.normalizedLocked()
	// d.Rows aliases the memo's reusable dirty buffer; detach it before the
	// lock is released and the buffer can be refilled.
	d.Rows = append([]int(nil), d.Rows...)
	return c, crow, ccol, d
}

func (m *Matrix) normalizedLocked() (c, crow, ccol *mat.CSR, d NormDelta) {
	b := m.binaryLocked()
	if m.crow != nil && m.normBase == b {
		return b, m.crow, m.ccol, NormDelta{}
	}
	if m.crow == nil || m.normBase == nil {
		m.normFull++
		m.colSums = b.ColSums()
		m.crow = b.RowNormalized()
		m.ccol = b.ColNormalized()
		d.Full = true
	} else {
		m.normDelta++
		rows := sortDedup(m.normDirty)
		// Update the column sums over the touched rows only. Values are
		// one-hot counts, so the ±1 arithmetic stays bitwise identical to a
		// from-scratch ColSums. The sums vector is copy-on-write: clones may
		// share the published slice, so mutate a fresh copy and swap.
		// Candidate columns are gathered first (sorted, deduplicated) so
		// their pre-delta sums can be snapshotted without a map.
		sums := append(mat.Vector(nil), m.colSums...)
		var cand []int
		for _, r := range rows {
			cols, _ := m.normBase.RowNNZ(r)
			cand = append(cand, cols...)
			cols, _ = b.RowNNZ(r)
			cand = append(cand, cols...)
		}
		uniq := sortDedup(cand)
		before := make(mat.Vector, len(uniq))
		for i, j := range uniq {
			before[i] = sums[j]
		}
		for _, r := range rows {
			cols, vals := m.normBase.RowNNZ(r)
			for i, j := range cols {
				sums[j] -= vals[i]
			}
			cols, vals = b.RowNNZ(r)
			for i, j := range cols {
				sums[j] += vals[i]
			}
		}
		affected := uniq[:0]
		for i, j := range uniq {
			if math.Float64bits(sums[j]) != math.Float64bits(before[i]) {
				affected = append(affected, j)
			}
		}
		m.crow = m.crow.ReplaceRowsNormalized(b, rows)
		m.ccol = m.ccol.ReplaceRowsColNormalized(b, rows, sums, affected)
		m.colSums = sums
		d.Rows = rows
		d.Cols = affected
	}
	m.normBase = b
	m.normDirty = m.normDirty[:0] // keep the capacity for the next write burst
	return b, m.crow, m.ccol, d
}

// NormRebuilds reports how many times Normalized() derived the normalized
// forms from scratch (full) and how many times it spliced only the rows
// touched since the previous derivation (delta). Clones inherit their
// parent's counts — the same cumulative observability contract as
// CSRRebuilds: under sparse write traffic, full must stop growing after the
// first build while delta tracks the write rate.
func (m *Matrix) NormRebuilds() (full, delta uint64) {
	m.binMu.Lock()
	defer m.binMu.Unlock()
	return m.normFull, m.normDelta
}

// PermuteUsers returns a new matrix whose user u is m's user perm[u].
func (m *Matrix) PermuteUsers(perm []int) *Matrix {
	if len(perm) != m.users {
		panic("response: PermuteUsers length mismatch")
	}
	out := m.Clone()
	for u, src := range perm {
		copy(out.choices[u*m.items:(u+1)*m.items], m.choices[src*m.items:(src+1)*m.items])
	}
	// The rows were rewritten wholesale behind the memo's back: drop the
	// cloned encoding, the normalized memo and all delta state instead of
	// marking every row dirty.
	out.bin, out.dirty = nil, nil
	out.crow, out.ccol, out.normBase, out.colSums, out.normDirty = nil, nil, nil, nil, nil
	out.gen++
	return out
}

// IsConnected reports whether the user-option bipartite graph induced by the
// responses forms a single connected component over the users who answered
// at least one item. Spectral ranking methods require connectivity to relate
// scores across users.
func (m *Matrix) IsConnected() bool {
	total := m.users + m.TotalOptions()
	uf := newUnionFind(total)
	for u := 0; u < m.users; u++ {
		for i := 0; i < m.items; i++ {
			if h := m.Answer(u, i); h != Unanswered {
				uf.union(u, m.users+m.Column(i, h))
			}
		}
	}
	root := -1
	for u := 0; u < m.users; u++ {
		if m.AnswerCount(u) == 0 {
			continue
		}
		r := uf.find(u)
		if root == -1 {
			root = r
		} else if r != root {
			return false
		}
	}
	return true
}

// OptionCounts returns, for item i, the number of users choosing each
// option.
func (m *Matrix) OptionCounts(i int) []int {
	counts := make([]int, m.options[i])
	for u := 0; u < m.users; u++ {
		if h := m.Answer(u, i); h != Unanswered {
			counts[h]++
		}
	}
	return counts
}

// unionFind is a standard weighted quick-union with path halving.
type unionFind struct {
	parent []int
	size   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	uf.size[ra] += uf.size[rb]
}
