package rank

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hitsndiffs/internal/mat"
)

func TestAverageRanksNoTies(t *testing.T) {
	r := AverageRanks(mat.Vector{10, 30, 20})
	if !r.Equal(mat.Vector{1, 3, 2}, 0) {
		t.Fatalf("ranks = %v", r)
	}
}

func TestAverageRanksWithTies(t *testing.T) {
	r := AverageRanks(mat.Vector{1, 2, 2, 3})
	if !r.Equal(mat.Vector{1, 2.5, 2.5, 4}, 0) {
		t.Fatalf("ranks = %v", r)
	}
	r = AverageRanks(mat.Vector{5, 5, 5})
	if !r.Equal(mat.Vector{2, 2, 2}, 0) {
		t.Fatalf("all-tied ranks = %v", r)
	}
}

func TestSpearmanPerfectAndReverse(t *testing.T) {
	x := mat.Vector{1, 2, 3, 4, 5}
	if got := Spearman(x, x); math.Abs(got-1) > 1e-12 {
		t.Fatalf("ρ(x,x) = %v", got)
	}
	y := x.Clone().Reverse()
	if got := Spearman(x, y); math.Abs(got+1) > 1e-12 {
		t.Fatalf("ρ(x,rev) = %v", got)
	}
}

func TestSpearmanKnownValue(t *testing.T) {
	// Classic example: ranks differing by one swap of adjacent items.
	x := mat.Vector{1, 2, 3, 4}
	y := mat.Vector{2, 1, 3, 4}
	// d = (1,-1,0,0); ρ = 1 - 6·Σd²/(n(n²-1)) = 1 - 12/60 = 0.8
	if got := Spearman(x, y); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("ρ = %v, want 0.8", got)
	}
}

func TestSpearmanInvariantUnderMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := mat.NewVector(50)
	y := mat.NewVector(50)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	base := Spearman(x, y)
	xt := x.Clone()
	for i := range xt {
		xt[i] = math.Exp(xt[i]) // strictly monotone transform
	}
	if got := Spearman(xt, y); math.Abs(got-base) > 1e-9 {
		t.Fatalf("Spearman not invariant: %v vs %v", got, base)
	}
}

func TestSpearmanConstantVectorNaN(t *testing.T) {
	if got := Spearman(mat.Vector{1, 1, 1}, mat.Vector{1, 2, 3}); !math.IsNaN(got) {
		t.Fatalf("ρ with constant vector = %v, want NaN", got)
	}
}

// Property: Spearman is symmetric and bounded in [-1, 1].
func TestPropertySpearmanSymmetricBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		x := mat.NewVector(n)
		y := mat.NewVector(n)
		for i := range x {
			x[i] = float64(rng.Intn(10)) // ties likely
			y[i] = float64(rng.Intn(10))
		}
		a := Spearman(x, y)
		b := Spearman(y, x)
		if math.IsNaN(a) {
			return math.IsNaN(b)
		}
		return math.Abs(a-b) < 1e-12 && a >= -1-1e-12 && a <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestKendallBasics(t *testing.T) {
	x := mat.Vector{1, 2, 3, 4}
	if got := Kendall(x, x); math.Abs(got-1) > 1e-12 {
		t.Fatalf("τ(x,x) = %v", got)
	}
	if got := Kendall(x, x.Clone().Reverse()); math.Abs(got+1) > 1e-12 {
		t.Fatalf("τ(x,rev) = %v", got)
	}
	// One adjacent swap in 4 elements: τ = (C-D)/pairs = (5-1)/6.
	y := mat.Vector{2, 1, 3, 4}
	if got := Kendall(x, y); math.Abs(got-4.0/6) > 1e-12 {
		t.Fatalf("τ = %v, want %v", got, 4.0/6)
	}
}

func TestKendallTies(t *testing.T) {
	x := mat.Vector{1, 1, 2}
	y := mat.Vector{1, 2, 3}
	// Pairs: (0,1) tie in x; (0,2) concordant; (1,2) concordant.
	// τ-b = 2 / sqrt((2+1)·2) = 2/sqrt(6).
	want := 2 / math.Sqrt(6)
	if got := Kendall(x, y); math.Abs(got-want) > 1e-12 {
		t.Fatalf("τ-b = %v, want %v", got, want)
	}
}

func TestKendallAllTiedNaN(t *testing.T) {
	if got := Kendall(mat.Vector{1, 1}, mat.Vector{2, 2}); !math.IsNaN(got) {
		t.Fatalf("τ all-tied = %v, want NaN", got)
	}
}

// Property: Kendall and Spearman agree in sign on tie-free data.
func TestPropertyKendallSpearmanSignAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		n := 5 + rng.Intn(30)
		x := mat.NewVector(n)
		y := mat.NewVector(n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = 0.8*x[i] + 0.3*rng.NormFloat64() // correlated
		}
		s := Spearman(x, y)
		k := Kendall(x, y)
		if s*k < 0 && math.Abs(s) > 0.1 && math.Abs(k) > 0.1 {
			t.Fatalf("sign disagreement: ρ=%v τ=%v", s, k)
		}
	}
}

func TestOrderFromScoresAndBack(t *testing.T) {
	s := mat.Vector{0.3, 0.9, 0.1}
	order := OrderFromScores(s)
	if order[0] != 1 || order[1] != 0 || order[2] != 2 {
		t.Fatalf("order = %v", order)
	}
	back := ScoresFromOrder(order)
	if got := Spearman(back, s); math.Abs(got-1) > 1e-12 {
		t.Fatalf("round-trip ρ = %v", got)
	}
}

func TestNormalizedDisplacement(t *testing.T) {
	a := mat.Vector{1, 2, 3, 4}
	if got := NormalizedDisplacement(a, a); got != 0 {
		t.Fatalf("self displacement = %v", got)
	}
	b := a.Clone().Reverse()
	// Ranks 1..4 vs 4..1: |d| = 3+1+1+3 = 8; normalized by m² = 16 → 0.5.
	if got := NormalizedDisplacement(a, b); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("reverse displacement = %v, want 0.5", got)
	}
	if got := NormalizedDisplacement(mat.Vector{}, mat.Vector{}); got != 0 {
		t.Fatalf("empty displacement = %v", got)
	}
}

func TestEntropy(t *testing.T) {
	if got := Entropy([]int{5, 0, 0}); got != 0 {
		t.Fatalf("point mass entropy = %v", got)
	}
	want := math.Log(2)
	if got := Entropy([]int{3, 3}); math.Abs(got-want) > 1e-12 {
		t.Fatalf("uniform-2 entropy = %v, want %v", got, want)
	}
	if got := Entropy([]int{0, 0}); got != 0 {
		t.Fatalf("empty entropy = %v", got)
	}
	// Uniform distribution maximizes entropy for fixed support size.
	if Entropy([]int{4, 4, 4}) < Entropy([]int{10, 1, 1}) {
		t.Fatal("uniform should have higher entropy")
	}
}

func TestEntropyNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Entropy([]int{-1})
}

func TestAbsSpearman(t *testing.T) {
	x := mat.Vector{1, 2, 3}
	if got := AbsSpearman(x, x.Clone().Reverse()); math.Abs(got-1) > 1e-12 {
		t.Fatalf("AbsSpearman = %v", got)
	}
}

func TestPearsonEdgeCases(t *testing.T) {
	if got := Pearson(mat.Vector{}, mat.Vector{}); !math.IsNaN(got) {
		t.Fatalf("empty Pearson = %v", got)
	}
	x := mat.Vector{1, 2, 3}
	if got := Pearson(x, x.Clone().Scale(2)); math.Abs(got-1) > 1e-12 {
		t.Fatalf("scaled Pearson = %v", got)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"Spearman": func() { Spearman(mat.Vector{1}, mat.Vector{1, 2}) },
		"Kendall":  func() { Kendall(mat.Vector{1}, mat.Vector{1, 2}) },
		"Displace": func() { NormalizedDisplacement(mat.Vector{1}, mat.Vector{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
