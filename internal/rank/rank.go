// Package rank provides the ranking utilities and rank-correlation metrics
// used to evaluate ability discovery methods: Spearman's ρ (the paper's
// accuracy measure, preferred over Kendall's τ in the presence of ties),
// Kendall's τ-b, average ranks with tie handling, normalized user
// displacement, and Shannon entropy for the decile symmetry-breaking
// heuristic.
package rank

import (
	"fmt"
	"math"

	"hitsndiffs/internal/mat"
)

// AverageRanks converts scores to 1-based ranks where tied scores receive
// the average of the ranks they span (the convention required by Spearman's
// ρ with ties). Higher scores receive higher ranks.
func AverageRanks(scores mat.Vector) mat.Vector {
	n := len(scores)
	order := scores.ArgSort()
	ranks := mat.NewVector(n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && scores[order[j+1]] == scores[order[i]] {
			j++
		}
		// Positions i..j (0-based) share the average rank.
		avg := float64(i+j)/2 + 1
		for t := i; t <= j; t++ {
			ranks[order[t]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Pearson returns the Pearson correlation coefficient of x and y, or NaN if
// either has zero variance.
func Pearson(x, y mat.Vector) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("rank: Pearson length mismatch %d vs %d", len(x), len(y)))
	}
	n := float64(len(x))
	if n == 0 {
		return math.NaN()
	}
	mx, my := x.Mean(), y.Mean()
	var sxy, sxx, syy float64
	for i := range x {
		dx := x[i] - mx
		dy := y[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns Spearman's rank correlation coefficient between the two
// score vectors: the Pearson correlation of their average ranks. It ranges
// in [-1, 1] and handles ties by average ranks.
func Spearman(x, y mat.Vector) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("rank: Spearman length mismatch %d vs %d", len(x), len(y)))
	}
	return Pearson(AverageRanks(x), AverageRanks(y))
}

// Kendall returns Kendall's τ-b between two score vectors, with the standard
// tie correction. The implementation is the O(n²) pair count, which is ample
// for the evaluation sizes used here.
func Kendall(x, y mat.Vector) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("rank: Kendall length mismatch %d vs %d", len(x), len(y)))
	}
	n := len(x)
	var concordant, discordant, tiesX, tiesY float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := x[i] - x[j]
			dy := y[i] - y[j]
			switch {
			case dx == 0 && dy == 0:
				// Joint tie: excluded from both tie counts in τ-b.
			case dx == 0:
				tiesX++
			case dy == 0:
				tiesY++
			case dx*dy > 0:
				concordant++
			default:
				discordant++
			}
		}
	}
	den := math.Sqrt((concordant + discordant + tiesX) * (concordant + discordant + tiesY))
	if den == 0 {
		return math.NaN()
	}
	return (concordant - discordant) / den
}

// OrderFromScores returns user indices sorted by descending score, i.e. the
// ranking "best user first" induced by a score vector.
func OrderFromScores(scores mat.Vector) []int {
	asc := scores.ArgSort()
	for i, j := 0, len(asc)-1; i < j; i, j = i+1, j-1 {
		asc[i], asc[j] = asc[j], asc[i]
	}
	return asc
}

// ScoresFromOrder inverts OrderFromScores: position p in order receives
// score m-p so that order[0] has the largest score. Useful for comparing an
// explicit ordering with correlation metrics.
func ScoresFromOrder(order []int) mat.Vector {
	s := mat.NewVector(len(order))
	for p, u := range order {
		s[u] = float64(len(order) - p)
	}
	return s
}

// NormalizedDisplacement returns the mean absolute difference between each
// element's rank under scores a and b, scaled to [0, 1] by the number of
// users. This is the "normalized user displacement" stability measure of
// the paper's Section IV-D.
func NormalizedDisplacement(a, b mat.Vector) float64 {
	if len(a) != len(b) {
		panic("rank: NormalizedDisplacement length mismatch")
	}
	m := float64(len(a))
	if m == 0 {
		return 0
	}
	ra := AverageRanks(a)
	rb := AverageRanks(b)
	var s float64
	for i := range ra {
		s += math.Abs(ra[i] - rb[i])
	}
	return s / (m * m)
}

// Entropy returns the Shannon entropy (in nats) of the empirical
// distribution given by non-negative counts. Zero counts contribute
// nothing; an all-zero histogram has entropy 0.
func Entropy(counts []int) float64 {
	var total float64
	for _, c := range counts {
		if c < 0 {
			panic("rank: Entropy negative count")
		}
		total += float64(c)
	}
	if total == 0 {
		return 0
	}
	var h float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / total
		h -= p * math.Log(p)
	}
	return h
}

// AbsSpearman returns |Spearman(x, y)|, the orientation-free accuracy used
// when a method's ranking direction is resolved separately (e.g. by the
// decile entropy heuristic).
func AbsSpearman(x, y mat.Vector) float64 {
	return math.Abs(Spearman(x, y))
}
