package hitsndiffs

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"hitsndiffs/internal/c1p"
	"hitsndiffs/internal/core"
	"hitsndiffs/internal/truth"
)

// MethodInfo describes a registered ability-discovery method: its
// registry name plus the applicability constraints tools need to route
// requests (a binary-only method cannot serve a 4-option workload, a
// consistent-only method fails on noisy data, and so on).
type MethodInfo struct {
	// Name is the registry key (e.g. "HnD-power"), identical to the
	// Name() of the rankers the factory produces.
	Name string
	// Summary is a one-line human-readable description.
	Summary string
	// BinaryOnly methods error on items with more than two options.
	BinaryOnly bool
	// HomogeneousOnly methods require every item to share one option
	// count.
	HomogeneousOnly bool
	// ConsistentOnly methods fail unless the responses admit a perfect
	// consecutive-ones ordering (the paper's "consistent" case).
	ConsistentOnly bool
	// Iterative methods honor WithTol, WithMaxIter and WithSeed.
	Iterative bool
	// UpdateBacked methods solve on the AVGHITS update machinery
	// (core.Update) built from the normalized one-hot matrices. The Engine
	// feeds these methods its generation-keyed Update cache — and only
	// these, since no other method touches the normalized forms; custom
	// registrations wrapping the core spectral solvers should set it.
	UpdateBacked bool
}

// Constraints renders the applicability flags as a short comma-separated
// tag list ("binary-only, iterative"), or "-" when unconstrained and
// closed-form. Used by cmd/hnd -list.
func (i MethodInfo) Constraints() string {
	var tags []string
	if i.BinaryOnly {
		tags = append(tags, "binary-only")
	}
	if i.HomogeneousOnly {
		tags = append(tags, "homogeneous-only")
	}
	if i.ConsistentOnly {
		tags = append(tags, "consistent-only")
	}
	if i.Iterative {
		tags = append(tags, "iterative")
	}
	if len(tags) == 0 {
		return "-"
	}
	return strings.Join(tags, ", ")
}

// Factory builds a configured Ranker for a registered method.
type Factory func(opts ...Option) Ranker

type methodEntry struct {
	info    MethodInfo
	factory Factory
}

var methodRegistry = struct {
	sync.RWMutex
	m map[string]methodEntry
}{m: make(map[string]methodEntry)}

// Register adds a method to the registry under info.Name. It errors on an
// empty name, a nil factory, or a name already taken; libraries extending
// this one register custom methods the same way the built-ins do.
func Register(info MethodInfo, factory Factory) error {
	if info.Name == "" {
		return fmt.Errorf("hitsndiffs: Register needs a method name")
	}
	if factory == nil {
		return fmt.Errorf("hitsndiffs: Register(%q) needs a factory", info.Name)
	}
	methodRegistry.Lock()
	defer methodRegistry.Unlock()
	if _, dup := methodRegistry.m[info.Name]; dup {
		return fmt.Errorf("hitsndiffs: method %q already registered", info.Name)
	}
	methodRegistry.m[info.Name] = methodEntry{info: info, factory: factory}
	return nil
}

// mustRegister is Register for the built-in init-time registrations.
func mustRegister(info MethodInfo, factory Factory) {
	if err := Register(info, factory); err != nil {
		panic(err)
	}
}

// New resolves a registered method by name and builds it with the given
// options. It is how cmd/hnd, the experiments harness and the Engine
// construct methods; unknown names report the available ones.
func New(name string, opts ...Option) (Ranker, error) {
	methodRegistry.RLock()
	e, ok := methodRegistry.m[name]
	methodRegistry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("hitsndiffs: unknown method %q (known: %v)", name, MethodNames())
	}
	return e.factory(opts...), nil
}

// MethodNames returns the names of all registered methods in sorted order.
func MethodNames() []string {
	methodRegistry.RLock()
	names := make([]string, 0, len(methodRegistry.m))
	for name := range methodRegistry.m {
		names = append(names, name)
	}
	methodRegistry.RUnlock()
	sort.Strings(names)
	return names
}

// Describe returns the metadata of a registered method.
func Describe(name string) (MethodInfo, bool) {
	methodRegistry.RLock()
	e, ok := methodRegistry.m[name]
	methodRegistry.RUnlock()
	return e.info, ok
}

// MethodInfos returns the metadata of every registered method, sorted by
// name.
func MethodInfos() []MethodInfo {
	names := MethodNames()
	out := make([]MethodInfo, 0, len(names))
	for _, n := range names {
		info, _ := Describe(n)
		out = append(out, info)
	}
	return out
}

// The built-in general-purpose methods (cheating baselines such as
// True-Answer and GRM-estimator need ground-truth inputs and therefore
// stay constructor-only).
func init() {
	spectral := func(name, summary string, f Factory) {
		mustRegister(MethodInfo{Name: name, Summary: summary, Iterative: true, UpdateBacked: true}, f)
	}
	spectral("HnD-power", "HITSnDIFFS power iteration, O(mn) per iteration (paper's Algorithm 1)",
		func(opts ...Option) Ranker { return core.HNDPower{Opts: newSettings(opts).coreOptions()} })
	spectral("HnD-direct", "HITSnDIFFS on the materialized update matrix via Arnoldi (O(m²n))",
		func(opts ...Option) Ranker { return core.HNDDirect{Opts: newSettings(opts).coreOptions()} })
	spectral("HnD-deflation", "HITSnDIFFS via Hotelling deflation, matrix-free",
		func(opts ...Option) Ranker { return core.HNDDeflation{Opts: newSettings(opts).coreOptions()} })
	spectral("ABH-power", "ABH spectral seriation by shifted power iteration (paper's Algorithm 2)",
		func(opts ...Option) Ranker { return core.ABHPower{Opts: newSettings(opts).coreOptions()} })
	spectral("ABH-direct", "ABH Fiedler vector on the materialized Laplacian (O(m²n))",
		func(opts ...Option) Ranker { return core.ABHDirect{Opts: newSettings(opts).coreOptions()} })
	spectral("ABH-lanczos", "ABH Fiedler vector by matrix-free symmetric Lanczos",
		func(opts ...Option) Ranker { return core.ABHLanczos{Opts: newSettings(opts).coreOptions()} })

	mustRegister(MethodInfo{
		Name: "BL", Summary: "Booth–Lueker PQ-tree ordering, exact on consistent responses",
		ConsistentOnly: true,
	}, func(opts ...Option) Ranker { return c1p.BL{} })

	iterTruth := func(name, summary string, build func(truth.Options) Ranker) {
		mustRegister(MethodInfo{Name: name, Summary: summary, Iterative: true},
			func(opts ...Option) Ranker { return build(newSettings(opts).truthOptions()) })
	}
	iterTruth("HITS", "Kleinberg's hubs-and-authorities on the user-option graph",
		func(o truth.Options) Ranker { return truth.HITS{Opts: o} })
	iterTruth("TruthFinder", "TruthFinder of Yin, Han and Yu",
		func(o truth.Options) Ranker { return truth.TruthFinder{Opts: o} })
	iterTruth("Invest", "Investment of Pasternack and Roth (fixed 10 rounds)",
		func(o truth.Options) Ranker { return truth.Investment{Opts: o} })
	iterTruth("PooledInv", "PooledInvestment of Pasternack and Roth (fixed 10 rounds)",
		func(o truth.Options) Ranker { return truth.PooledInvestment{Opts: o} })

	mustRegister(MethodInfo{
		Name: "MajorityVote", Summary: "agreement with the per-item plurality option",
	}, func(opts ...Option) Ranker { return truth.MajorityVote{} })

	mustRegister(MethodInfo{
		Name: "Dawid-Skene", Summary: "Dawid–Skene confusion-matrix EM",
		HomogeneousOnly: true, Iterative: true,
	}, func(opts ...Option) Ranker { return truth.DawidSkene{Opts: newSettings(opts).truthOptions()} })

	mustRegister(MethodInfo{
		Name: "Ghosh-spectral", Summary: "binary spectral method of Ghosh, Kale and McAfee",
		BinaryOnly: true, Iterative: true,
	}, func(opts ...Option) Ranker { return truth.GhoshSpectral{Opts: newSettings(opts).truthOptions()} })

	mustRegister(MethodInfo{
		Name: "Dalvi-spectral", Summary: "binary spectral method of Dalvi et al.",
		BinaryOnly: true, Iterative: true,
	}, func(opts ...Option) Ranker { return truth.DalviSpectral{Opts: newSettings(opts).truthOptions()} })

	mustRegister(MethodInfo{
		Name: "GLAD", Summary: "GLAD EM of Whitehill et al. for binary items",
		BinaryOnly: true, Iterative: true,
	}, func(opts ...Option) Ranker { return truth.GLAD{Opts: newSettings(opts).truthOptions()} })
}
