package hitsndiffs

import (
	"hitsndiffs/internal/irt"
	"hitsndiffs/internal/mat"
	"hitsndiffs/internal/rank"
)

// Spearman returns Spearman's rank correlation between two score vectors
// (the paper's accuracy measure), handling ties by average ranks.
func Spearman(x, y []float64) float64 { return rank.Spearman(mat.Vector(x), mat.Vector(y)) }

// Kendall returns Kendall's τ-b between two score vectors.
func Kendall(x, y []float64) float64 { return rank.Kendall(mat.Vector(x), mat.Vector(y)) }

// OrderFromScores returns user indices sorted best-first by score.
func OrderFromScores(scores []float64) []int { return rank.OrderFromScores(mat.Vector(scores)) }

// ModelKind selects a polytomous IRT generative model.
type ModelKind = irt.ModelKind

// The generative models of the paper's experiments.
const (
	ModelGRM      = irt.ModelGRM
	ModelBock     = irt.ModelBock
	ModelSamejima = irt.ModelSamejima
)

// GeneratorConfig configures the synthetic workload generators.
type GeneratorConfig = irt.Config

// Dataset is a generated workload with its hidden ground truth.
type Dataset = irt.Dataset

// DefaultGeneratorConfig returns the paper's default workload parameters
// for the given model (100 users, 100 items, 3 options, θ∈[0,1],
// b∈[−0.5,0.5], a∈[0,10]).
func DefaultGeneratorConfig(model ModelKind) GeneratorConfig { return irt.DefaultConfig(model) }

// Generate samples a synthetic ability-discovery dataset.
func Generate(cfg GeneratorConfig) (*Dataset, error) { return irt.Generate(cfg) }

// GenerateConsistent samples an ideal consistent-response (C1P) dataset:
// the infinite-discrimination limit in which better users always pick
// better options.
func GenerateConsistent(cfg GeneratorConfig) (*Dataset, error) { return irt.GenerateC1P(cfg) }
