package hitsndiffs

import (
	"hitsndiffs/internal/irt"
	"hitsndiffs/internal/mat"
	"hitsndiffs/internal/rank"
)

// EngineMetrics is a point-in-time snapshot of one engine's observability
// counters, assembled under the engine's locks so a reader (the serving
// tier's /metrics endpoint, a test, a dashboard scraper) never races the
// engine's internal state. All counters are cumulative since construction.
//
// For a ShardedEngine the snapshot is the aggregate over its shards:
// Version is the cluster version (sum of shard versions, the same key
// ShardedEngine.Version reports) and every counter is summed, with the
// router's own merged-result cache hits folded into CacheHits. Use
// ShardMetrics for the per-shard breakdown.
type EngineMetrics struct {
	// Version is the write-version counter results are cached under.
	Version uint64 `json:"version"`
	// Generation is the matrix's write-generation counter — one tick per
	// observation ever applied, the key durability records are stamped
	// with. Unlike Version it survives restarts: a recovered engine
	// resumes at the generation its durable log reached, so comparing
	// Generation across a crash proves no acknowledged write was lost.
	// For a ShardedEngine it is the sum over shards.
	Generation uint64 `json:"generation"`
	// ServedGeneration is the watermark of the highest write generation a
	// rank result has been served at — the refresh scheduler's progress
	// measure. Generation − ServedGeneration is the engine's current
	// serving lag; under WithMaxStaleness(0) the two converge after every
	// rank. For a multi-shard ShardedEngine it is the router's merged-
	// result watermark (a sum of shard generations, comparable to
	// Generation); per-shard watermarks are in ShardMetrics.
	ServedGeneration uint64 `json:"served_generation"`
	// StaleServes counts results served behind the write frontier under a
	// WithMaxStaleness bound (Rank cache entries and RankBatch tenant
	// entries outliving their generation). Zero when the bound is zero.
	StaleServes uint64 `json:"stale_serves"`
	// MaxStaleness is the configured WithMaxStaleness bound in write
	// generations; zero means every rank is exact. Aggregates report the
	// maximum across shards.
	MaxStaleness uint64 `json:"max_staleness"`
	// Users and Items give the matrix geometry being served.
	Users int `json:"users"`
	// Items is the item count (see Users).
	Items int `json:"items"`
	// CacheHits counts Rank / InferLabels / batch-path requests served
	// from a version-keyed result cache without solving.
	CacheHits uint64 `json:"cache_hits"`
	// CacheMisses counts solves actually started (cache cold or stale).
	CacheMisses uint64 `json:"cache_misses"`
	// BatchSolves counts tenants solved (not served cached) through
	// Engine.RankBatch's block-diagonal batching path.
	BatchSolves uint64 `json:"batch_solves"`
	// CertifiedHits counts cache misses served through the certified
	// warm-update fast path (WithCertifiedUpdates): one or two power steps
	// proved the previous scores converged at the solve tolerance, so the
	// iterative solver never ran. Always a subset of CacheMisses.
	CertifiedHits uint64 `json:"certified_hits"`
	// CertifiedFallbacks counts eligible certification attempts that were
	// rejected (residual too large, screen abort, no usable warm iterate)
	// and fell back to the full warm solve. CertifiedHits +
	// CertifiedFallbacks is the total attempt count; requests that never
	// attempt (flag off, cold start, non-HnD-power method) count in
	// neither.
	CertifiedFallbacks uint64 `json:"certified_fallbacks"`
	// CSRFullRebuilds / CSRDeltaRebuilds mirror ResponseMatrix.CSRRebuilds
	// for the engine's current matrix: from-scratch one-hot encodings vs
	// touched-row splices. Under sparse write traffic full must stop
	// growing after the first build.
	CSRFullRebuilds uint64 `json:"csr_full_rebuilds"`
	// CSRDeltaRebuilds counts touched-row CSR splices (see CSRFullRebuilds).
	CSRDeltaRebuilds uint64 `json:"csr_delta_rebuilds"`
	// NormFullRebuilds / NormDeltaRebuilds mirror
	// ResponseMatrix.NormRebuilds: from-scratch normalized-triple
	// derivations vs generation-keyed splices.
	NormFullRebuilds uint64 `json:"norm_full_rebuilds"`
	// NormDeltaRebuilds counts normalized-triple splices (see
	// NormFullRebuilds).
	NormDeltaRebuilds uint64 `json:"norm_delta_rebuilds"`
}

// add accumulates o into m for the sharded aggregate view.
func (m *EngineMetrics) add(o EngineMetrics) {
	m.Version += o.Version
	m.Generation += o.Generation
	m.ServedGeneration += o.ServedGeneration
	m.StaleServes += o.StaleServes
	if o.MaxStaleness > m.MaxStaleness {
		m.MaxStaleness = o.MaxStaleness
	}
	m.CacheHits += o.CacheHits
	m.CacheMisses += o.CacheMisses
	m.BatchSolves += o.BatchSolves
	m.CertifiedHits += o.CertifiedHits
	m.CertifiedFallbacks += o.CertifiedFallbacks
	m.CSRFullRebuilds += o.CSRFullRebuilds
	m.CSRDeltaRebuilds += o.CSRDeltaRebuilds
	m.NormFullRebuilds += o.NormFullRebuilds
	m.NormDeltaRebuilds += o.NormDeltaRebuilds
}

// Spearman returns Spearman's rank correlation between two score vectors
// (the paper's accuracy measure), handling ties by average ranks.
func Spearman(x, y []float64) float64 { return rank.Spearman(mat.Vector(x), mat.Vector(y)) }

// Kendall returns Kendall's τ-b between two score vectors.
func Kendall(x, y []float64) float64 { return rank.Kendall(mat.Vector(x), mat.Vector(y)) }

// OrderFromScores returns user indices sorted best-first by score.
func OrderFromScores(scores []float64) []int { return rank.OrderFromScores(mat.Vector(scores)) }

// ModelKind selects a polytomous IRT generative model.
type ModelKind = irt.ModelKind

// The generative models of the paper's experiments.
const (
	ModelGRM      = irt.ModelGRM
	ModelBock     = irt.ModelBock
	ModelSamejima = irt.ModelSamejima
)

// GeneratorConfig configures the synthetic workload generators.
type GeneratorConfig = irt.Config

// Dataset is a generated workload with its hidden ground truth.
type Dataset = irt.Dataset

// DefaultGeneratorConfig returns the paper's default workload parameters
// for the given model (100 users, 100 items, 3 options, θ∈[0,1],
// b∈[−0.5,0.5], a∈[0,10]).
func DefaultGeneratorConfig(model ModelKind) GeneratorConfig { return irt.DefaultConfig(model) }

// Generate samples a synthetic ability-discovery dataset.
func Generate(cfg GeneratorConfig) (*Dataset, error) { return irt.Generate(cfg) }

// GenerateConsistent samples an ideal consistent-response (C1P) dataset:
// the infinite-discrimination limit in which better users always pick
// better options.
func GenerateConsistent(cfg GeneratorConfig) (*Dataset, error) { return irt.GenerateC1P(cfg) }
