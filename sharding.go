package hitsndiffs

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"hitsndiffs/internal/core"
	"hitsndiffs/internal/mat"
	"hitsndiffs/internal/shard"
)

// ShardedEngine scales the serving Engine horizontally: it hashes users
// across N independent Engines (shards), each owning a disjoint slice of
// the response matrix, and routes traffic so the shards never contend with
// each other.
//
// Three effects make it the heavy-traffic configuration:
//
//   - Observe and ObserveBatch touch only the shard(s) owning the written
//     users, so write locks, version bumps and copy-on-write clones are
//     confined to 1/N of the matrix. Under mixed read/write traffic the
//     dominant write cost — the one-time clone after a snapshot — shrinks
//     from O(m·n) to O(m·n/N) (see BenchmarkShardedObserve).
//   - Rank fans out across shards concurrently and re-solves only shards
//     whose version changed since their last solve; a single-user write
//     therefore re-ranks 1/N of the users while the other shards answer
//     from their caches (see BenchmarkShardedRank).
//   - All shards share one persistent kernel worker pool (see SetPoolSize),
//     so concurrent shard solves fan out without per-apply goroutine spawns.
//
// The price is score granularity: user scores are only directly comparable
// within a shard, so the merged ranking min-max normalizes each shard to
// [0, 1] — the same contract as RankPerComponent. Workloads that need
// globally calibrated scores, or label inference over the full matrix,
// should use a single Engine (or one ShardedEngine per tenant and
// shard.OfString to route tenants).
//
// Construct with NewShardedEngine; the zero value is not usable. All
// methods are safe for concurrent use.
type ShardedEngine struct {
	method      string
	base        []Option
	batchSize   int
	updateCache bool
	maxStale    uint64 // WithMaxStaleness bound, enforced at the router's merged cache
	engines     []*Engine
	users       *shard.Map
	options     []int // per-item option counts, identical across shards

	// mu guards the router's two memos: sparse, the per-shard
	// too-few-users verdict keyed by shard version (recomputing it per
	// Rank would rescan matrices or take COW-poisoning snapshots), and
	// cached, the merged Rank result keyed by the cluster version.
	mu     sync.Mutex
	sparse []sparseMemo
	cached *shardedCache

	// routerHits counts Ranks served from the merged-result cache without
	// touching any shard; Metrics folds it into the aggregate CacheHits.
	// staleServes counts merged results served behind the cluster write
	// frontier under the staleness bound, and servedGen is the router's
	// served-generation watermark (sum-of-shard-generations units).
	routerHits  atomic.Uint64
	staleServes atomic.Uint64
	servedGen   atomic.Uint64
}

// shardedCache holds the merged ranking computed at one cluster version.
// Shard versions only grow, so their sum is a valid freshness key: equal
// sums imply no shard has been written in between. gen is the sum of the
// shard write generations the merge was solved at — the key router-level
// staleness is measured against.
type shardedCache struct {
	version uint64
	gen     uint64
	res     Result
}

// sparseMemo caches one shard's too-few-users verdict for a shard version.
type sparseMemo struct {
	version uint64
	valid   bool
	sparse  bool
}

// NewShardedEngine builds a sharded serving engine over the given response
// matrix. WithShards picks the shard count (default 1; capped at the user
// count); the remaining options are those of NewEngine and apply to every
// shard. Users are assigned to shards by hashing their index
// (shard.Of), so the partition is deterministic across processes.
//
// Kernel parallelism needs no per-shard division: every shard's solves
// dispatch their chunks through the shared persistent worker pool (see
// SetPoolSize), which caps concurrent kernel execution at the pool size
// plus one chunk per in-flight solve (each dispatch runs its first chunk
// itself); surplus chunks queue. Each shard therefore keeps the full
// WithParallelism / SetParallelism chunk budget — in particular the
// steady-state single-shard re-solve.
func NewShardedEngine(m *ResponseMatrix, opts ...EngineOption) (*ShardedEngine, error) {
	if m == nil {
		return nil, fmt.Errorf("hitsndiffs: NewShardedEngine needs a response matrix")
	}
	s := defaultEngineSettings()
	for _, o := range opts {
		if o != nil {
			o(&s)
		}
	}
	users := shardMapFor(m.Users(), s.shards)
	if s.ringReplicas > 0 {
		users = ringMapFor(m.Users(), s.shards, s.ringReplicas)
	}
	n := users.Shards()
	options := make([]int, m.Items())
	for i := range options {
		options[i] = m.OptionCount(i)
	}

	se := &ShardedEngine{
		method:      s.method,
		base:        s.base,
		batchSize:   s.batchSize,
		updateCache: s.updateCache,
		maxStale:    s.maxStale,
		engines:     make([]*Engine, n),
		users:       users,
		options:     options,
		sparse:      make([]sparseMemo, n),
	}
	// Forward the caller's options so the shard engines see the full
	// NewEngine option surface, present and future; NewEngine ignores the
	// router-only WithShards. With several shards the staleness bound is
	// enforced once, at the router's merged-result cache — the shard
	// engines stay exact so the refresh fan-out (RankAll's peekCached /
	// solveInput protocol) always observes each shard's true frontier. A
	// single shard delegates Rank wholesale, so it keeps the bound.
	shardOpts := opts
	if n > 1 && s.maxStale > 0 {
		shardOpts = append(append([]EngineOption(nil), opts...), WithMaxStaleness(0))
	}
	for sh := 0; sh < n; sh++ {
		// shardMapFor guarantees every shard owns at least one user, so
		// Subset's non-empty precondition always holds.
		sub := m.Subset(users.GlobalsOf(sh))
		eng, err := NewEngine(sub, shardOpts...)
		if err != nil {
			return nil, err
		}
		se.engines[sh] = eng
	}
	return se, nil
}

// shardMapFor builds the user partition for a requested shard count,
// deterministically lowering the count until every shard owns at least one
// user (hash imbalance can leave a shard empty when shards approach the
// user count; a 1-wide partition never can). The result is a pure function
// of (users, requested), so re-sharding the same population reproduces the
// same partition.
func shardMapFor(userCount, requested int) *shard.Map {
	n := requested
	if n > userCount {
		n = userCount
	}
	if n < 1 {
		n = 1
	}
	for ; n > 1; n-- {
		m := shard.NewMap(userCount, n)
		empty := false
		for sh := 0; sh < n; sh++ {
			if m.Size(sh) == 0 {
				empty = true
				break
			}
		}
		if !empty {
			return m
		}
	}
	return shard.NewMap(userCount, 1)
}

// ringMapFor is shardMapFor's consistent-hash twin (WithRingPartition):
// it builds the ring partition for a requested shard count, lowering the
// count until no shard is empty. Like shardMapFor the result is a pure
// function of its inputs, so every process reproduces the same partition.
func ringMapFor(userCount, requested, replicas int) *shard.Map {
	n := requested
	if n > userCount {
		n = userCount
	}
	if n < 1 {
		n = 1
	}
	for ; n > 1; n-- {
		m := shard.NewRingMap(userCount, n, replicas)
		empty := false
		for sh := 0; sh < n; sh++ {
			if m.Size(sh) == 0 {
				empty = true
				break
			}
		}
		if !empty {
			return m
		}
	}
	return shard.NewRingMap(userCount, 1, replicas)
}

// Shards returns the number of independent engine shards behind the router.
func (s *ShardedEngine) Shards() int { return len(s.engines) }

// Users returns the number of users across all shards.
func (s *ShardedEngine) Users() int { return s.users.Users() }

// Items returns the number of items every shard tracks.
func (s *ShardedEngine) Items() int { return len(s.options) }

// Method returns the name of the registered method every shard serves.
func (s *ShardedEngine) Method() string { return s.method }

// ShardFor returns the shard index serving the given global user. The
// assignment is deterministic: it depends only on the user index and the
// shard count.
func (s *ShardedEngine) ShardFor(user int) int { return s.users.ShardOf(user) }

// ShardForKey routes an arbitrary string key — typically a tenant
// identifier — to a shard index with the same hash family user routing
// uses. It lets callers pin per-tenant side state to the shard that would
// serve it.
func (s *ShardedEngine) ShardForKey(key string) int {
	return shard.OfString(key, len(s.engines))
}

// LocalFor returns the shard owning a global user together with the user's
// row index inside that shard — the index into the shard's View matrix and
// RankAll score vector. The mapping is fixed at construction.
func (s *ShardedEngine) LocalFor(user int) (shard, local int) {
	return s.users.Locate(user)
}

// UsersOf returns the global user indices a shard serves, ordered by the
// shard's local row index (local order preserves global order). The slice
// is a copy the caller may keep.
func (s *ShardedEngine) UsersOf(sh int) []int {
	return append([]int(nil), s.users.GlobalsOf(sh)...)
}

// Version returns the sum of the shard version counters: it increases with
// every successful write anywhere in the cluster, so equal Versions imply
// no shard has changed.
func (s *ShardedEngine) Version() uint64 {
	var v uint64
	for _, e := range s.engines {
		v += e.Version()
	}
	return v
}

// Generation returns the sum of the shard matrices' write-generation
// counters — the cluster analogue of Engine.Generation and the unit the
// router-level staleness bound is measured in. Shard generations only
// grow, so the sum is monotone.
func (s *ShardedEngine) Generation() uint64 {
	var g uint64
	for _, e := range s.engines {
		g += e.Generation()
	}
	return g
}

// MaxStaleness returns the configured WithMaxStaleness bound in write
// generations; zero means every rank is exact.
func (s *ShardedEngine) MaxStaleness() uint64 { return s.maxStale }

// View returns O(1) copy-on-write views of every shard's response matrix
// together with the matching shard versions, in shard order. Like
// Engine.View, the returned matrices are immutable by contract: the next
// write to a shard clones it first, so each view stays consistent forever,
// but callers must not mutate them. Use LocalFor / UsersOf to translate
// between global user indices and per-shard row indices.
func (s *ShardedEngine) View() ([]*ResponseMatrix, []uint64) {
	ms := make([]*ResponseMatrix, len(s.engines))
	vs := make([]uint64, len(s.engines))
	for i, e := range s.engines {
		ms[i], vs[i] = e.View()
	}
	return ms, vs
}

// SetShardDurability installs (or removes) the write hook of one shard's
// engine — see Engine.SetDurability. A sharded deployment persists one
// log per shard: the hook receives shard-local user indices (the row
// indexing of the shard's own matrix), so each shard's WAL replays
// against its own geometry with no cross-shard coordination.
func (s *ShardedEngine) SetShardDurability(sh int, hook WriteHook) error {
	if sh < 0 || sh >= len(s.engines) {
		return fmt.Errorf("hitsndiffs: SetShardDurability shard %d out of range [0,%d)", sh, len(s.engines))
	}
	s.engines[sh].SetDurability(hook)
	return nil
}

// RestoreShard replaces one shard engine's matrix with recovered state —
// see Engine.Restore. The matrix must match the shard's geometry
// (UsersOf(sh) rows, the cluster's items and options), which is
// deterministic across processes: the user partition depends only on
// (user count, shard count).
func (s *ShardedEngine) RestoreShard(sh int, m *ResponseMatrix) error {
	if sh < 0 || sh >= len(s.engines) {
		return fmt.Errorf("hitsndiffs: RestoreShard shard %d out of range [0,%d)", sh, len(s.engines))
	}
	return s.engines[sh].Restore(m)
}

// FenceShard fences (true) or unfences (false) one shard's write path —
// see Engine.SetFenced. While fenced, any Observe/ObserveBatch routing an
// observation to the shard fails with ErrFenced before anything is
// applied anywhere; reads keep serving the shard's frozen state.
func (s *ShardedEngine) FenceShard(sh int, on bool) error {
	if sh < 0 || sh >= len(s.engines) {
		return fmt.Errorf("hitsndiffs: FenceShard shard %d out of range [0,%d)", sh, len(s.engines))
	}
	s.engines[sh].SetFenced(on)
	return nil
}

// ShardFenced reports whether a shard currently rejects writes with
// ErrFenced. Out-of-range shards report false.
func (s *ShardedEngine) ShardFenced(sh int) bool {
	if sh < 0 || sh >= len(s.engines) {
		return false
	}
	return s.engines[sh].Fenced()
}

// ShardView returns one shard's matrix as an O(1) copy-on-write view with
// the shard's version — the single-shard form of View, used by the shard
// handoff exporter to snapshot only the moving shard.
func (s *ShardedEngine) ShardView(sh int) (*ResponseMatrix, uint64, error) {
	if sh < 0 || sh >= len(s.engines) {
		return nil, 0, fmt.Errorf("hitsndiffs: ShardView shard %d out of range [0,%d)", sh, len(s.engines))
	}
	m, v := s.engines[sh].View()
	return m, v, nil
}

// ShardGeneration returns one shard's write-generation counter (the
// per-shard analogue of Generation's cluster sum) — the frontier a shard
// handoff must prove the transferred WAL tail reaches.
func (s *ShardedEngine) ShardGeneration(sh int) (uint64, error) {
	if sh < 0 || sh >= len(s.engines) {
		return 0, fmt.Errorf("hitsndiffs: ShardGeneration shard %d out of range [0,%d)", sh, len(s.engines))
	}
	return s.engines[sh].Generation(), nil
}

// AdoptShard replaces one shard engine's matrix with state imported from
// another process — see Engine.Adopt. Unlike RestoreShard it is legal on
// a shard that already absorbed writes: the shard's version bumps, so the
// router's merged cache and sparse memo invalidate on the next read.
func (s *ShardedEngine) AdoptShard(sh int, m *ResponseMatrix) error {
	if sh < 0 || sh >= len(s.engines) {
		return fmt.Errorf("hitsndiffs: AdoptShard shard %d out of range [0,%d)", sh, len(s.engines))
	}
	return s.engines[sh].Adopt(m)
}

// validate rejects an observation no shard could apply, using the router's
// own copy of the item/option geometry (and global user indices, which the
// shard engines cannot report) so a bad batch is refused before any shard
// is touched.
func (s *ShardedEngine) validate(o Observation) error {
	return validateObservation(o, s.Users(), s.Items(), func(i int) int { return s.options[i] })
}

// Observe records that user picked option of item, replacing any earlier
// answer; pass Unanswered to retract one. Only the shard owning the user is
// locked and version-bumped — writes to different shards never contend.
func (s *ShardedEngine) Observe(user, item, option int) error {
	o := Observation{User: user, Item: item, Option: option}
	if err := s.validate(o); err != nil {
		return err
	}
	sh, local := s.users.Locate(user)
	return s.engines[sh].Observe(local, item, option)
}

// ObserveBatch splits a batch of responses by owning shard and applies the
// per-shard sub-batches concurrently, each under its shard's single lock
// acquisition and version bump. The whole batch is validated up front
// against the router's geometry, so an out-of-range observation leaves
// every shard untouched; a fence on ANY touched shard likewise fails the
// batch with ErrFenced before any sub-batch applies — every touched
// shard's write lock is held across the fence check and the applies, so
// a fence raised concurrently can never split the batch into an applied
// half and a rejected half (which a client 429-retry would then
// double-apply).
func (s *ShardedEngine) ObserveBatch(obs []Observation) error {
	if len(obs) == 0 {
		return nil
	}
	for _, o := range obs {
		if err := s.validate(o); err != nil {
			return err
		}
	}
	perShard := make([][]Observation, len(s.engines))
	for _, o := range obs {
		sh, local := s.users.Locate(o.User)
		perShard[sh] = append(perShard[sh], Observation{User: local, Item: o.Item, Option: o.Option})
	}
	var touched []int
	for sh, batch := range perShard {
		if len(batch) > 0 {
			touched = append(touched, sh)
		}
	}
	if len(touched) == 1 {
		return s.engines[touched[0]].ObserveBatch(perShard[touched[0]])
	}
	// Lock every touched shard in index order (every multi-shard batch
	// locks in the same order, so two concurrent batches cannot deadlock)
	// and check the fences under the locks: SetFenced also takes the write
	// lock, so no fence can slip between the check and the applies.
	for _, sh := range touched {
		s.engines[sh].mu.Lock()
	}
	for _, sh := range touched {
		if s.engines[sh].fenced.Load() {
			for _, u := range touched {
				s.engines[u].mu.Unlock()
			}
			return ErrFenced
		}
	}
	// Apply concurrently with the locks held; each goroutine releases its
	// shard's lock when its sub-batch lands (a sync.Mutex may be unlocked
	// by a different goroutine than locked it).
	errs := make([]error, len(s.engines))
	var wg sync.WaitGroup
	for _, sh := range touched {
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			defer s.engines[sh].mu.Unlock()
			errs[sh] = s.engines[sh].observeBatchLocked(perShard[sh])
		}(sh)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Rank scores every user in the cluster. With one shard it is exactly
// Engine.Rank. With several, the shards rank concurrently — each serving
// from its version-keyed cache when unchanged, re-solving (warm-started)
// when written — and the per-shard scores are min-max normalized to [0, 1]
// and merged into one global score vector. Between writes the merged
// result itself is cached, so a read-heavy steady state pays one score
// copy per Rank, no fan-out; under a WithMaxStaleness bound the cached
// merge keeps serving past writes — tagged with its Generation and
// Staleness in cluster units (sums of shard write generations) — until the
// cluster moves more than the bound ahead (see Refresh). The merge is
// deterministic: it visits shards in index order and writes each user's
// score at its global index, so the result is independent of shard
// completion order. Iterations sums the shard iteration counts; Converged
// reports whether every shard converged. The returned Result owns its
// score slice; callers may mutate it freely.
func (s *ShardedEngine) Rank(ctx context.Context) (Result, error) {
	if len(s.engines) == 1 {
		return s.engines[0].Rank(ctx)
	}
	version := s.Version()
	s.mu.Lock()
	if c := s.cached; c != nil {
		if c.version == version {
			out := c.res
			out.Scores = append(mat.Vector(nil), c.res.Scores...)
			out.Generation = c.gen
			out.Staleness = 0
			s.mu.Unlock()
			s.routerHits.Add(1)
			casMax(&s.servedGen, c.gen)
			return out, nil
		}
		if s.maxStale > 0 {
			// Shard generations only grow, so the sum read here can only lag
			// the true frontier — the reported staleness never under-counts
			// relative to the instant the bound was checked.
			if gen := s.Generation(); gen-c.gen <= s.maxStale {
				out := c.res
				out.Scores = append(mat.Vector(nil), c.res.Scores...)
				out.Generation = c.gen
				out.Staleness = gen - c.gen
				s.mu.Unlock()
				s.routerHits.Add(1)
				s.staleServes.Add(1)
				casMax(&s.servedGen, c.gen)
				return out, nil
			}
		}
	}
	s.mu.Unlock()
	return s.solveMerged(ctx, version)
}

// Refresh is Rank with the staleness bound ignored: it re-solves the stale
// shards and re-merges, pushing the router's served watermark to the
// cluster write frontier — the path the background refresh scheduler
// drives. Under a zero bound it is identical to Rank.
func (s *ShardedEngine) Refresh(ctx context.Context) (Result, error) {
	if len(s.engines) == 1 {
		return s.engines[0].Refresh(ctx)
	}
	version := s.Version()
	s.mu.Lock()
	if c := s.cached; c != nil && c.version == version {
		out := c.res
		out.Scores = append(mat.Vector(nil), c.res.Scores...)
		out.Generation = c.gen
		out.Staleness = 0
		s.mu.Unlock()
		s.routerHits.Add(1)
		casMax(&s.servedGen, c.gen)
		return out, nil
	}
	s.mu.Unlock()
	return s.solveMerged(ctx, version)
}

// solveMerged is the merged-cache miss path shared by Rank and Refresh:
// rank every shard (cached or batch-solved), normalize, merge, and install
// the merged result keyed by the cluster version read before the fan-out.
func (s *ShardedEngine) solveMerged(ctx context.Context, version uint64) (Result, error) {
	results, err := s.RankAll(ctx)
	if err != nil {
		return Result{}, err
	}
	merged := Result{Scores: mat.NewVector(s.Users()), Converged: true}
	for sh, res := range results {
		norm := res.Scores.MinMaxNormalized()
		for local, g := range s.users.GlobalsOf(sh) {
			merged.Scores[g] = norm[local]
		}
		merged.Iterations += res.Iterations
		merged.Converged = merged.Converged && res.Converged
		merged.Generation += res.Generation
	}
	casMax(&s.servedGen, merged.Generation)
	if s.Version() == version {
		s.mu.Lock()
		s.cached = &shardedCache{version: version, gen: merged.Generation, res: merged}
		s.mu.Unlock()
		out := merged
		out.Scores = append(mat.Vector(nil), merged.Scores...)
		return out, nil
	}
	return merged, nil
}

// RankAll ranks every shard and returns the raw per-shard results in shard
// order, scores in shard-local user indexing (translate with LocalFor /
// UsersOf). Shards whose version is unchanged answer from their caches;
// the stale shards are solved together in one batched block-diagonal
// system (core.BatchRanker, warm-started per shard), so each power step
// services every stale shard's matvec with a single pass through the
// persistent kernel worker pool instead of one goroutine fan-out per
// shard. WithBatchSize caps how many shards one packed solve takes;
// methods without a batched form rank their shards concurrently instead.
// Shards left with fewer than two answering users — possible under hash
// imbalance on tiny populations — report a flat, converged result instead
// of failing the whole call. On error, the first failing shard in index
// order wins, deterministically.
func (s *ShardedEngine) RankAll(ctx context.Context) ([]Result, error) {
	if s.method != batchableMethod {
		return s.rankAllFanOut(ctx)
	}
	results := make([]Result, len(s.engines))
	var items []core.BatchItem
	var stale []int
	var versions []uint64
	for i, eng := range s.engines {
		if len(s.engines) > 1 && s.shardTooSparse(i) {
			results[i] = Result{Scores: mat.NewVector(eng.Users()), Converged: true, Generation: eng.Generation()}
			continue
		}
		if res, ok := eng.peekCached(); ok {
			results[i] = res
			continue
		}
		m, version, warm := eng.solveInput()
		// Certified fast path per shard: a written shard whose warm scores
		// certify at the tolerance is served without joining the packed
		// batch solve (see Engine.certifiedSolve).
		if res, ok := eng.certifiedSolve(ctx, m, version, warm); ok {
			results[i] = res
			continue
		}
		items = append(items, core.BatchItem{M: m, WarmStart: warm})
		stale = append(stale, i)
		versions = append(versions, version)
	}
	if len(items) == 0 {
		return results, nil
	}
	err := runBatches(ctx, s.base, s.updateCache, s.batchSize, items,
		func(k int) string { return fmt.Sprintf("RankAll shard %d", stale[k]) },
		func(k int, res Result) {
			res.Generation = items[k].M.Generation()
			s.engines[stale[k]].storeSolved(versions[k], res)
			results[stale[k]] = res
		})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// rankAllFanOut ranks every shard concurrently through its own Engine —
// the path for methods the block-diagonal batcher cannot express.
func (s *ShardedEngine) rankAllFanOut(ctx context.Context) ([]Result, error) {
	results := make([]Result, len(s.engines))
	errs := make([]error, len(s.engines))
	var wg sync.WaitGroup
	for i := range s.engines {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.rankShard(ctx, i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// rankShard ranks one shard, mapping the too-few-users degenerate case to a
// flat result when the shard is only a slice of a wider population. (The
// merge maps the flat scores to 0.5 — "no signal" — for every user there.)
func (s *ShardedEngine) rankShard(ctx context.Context, i int) (Result, error) {
	eng := s.engines[i]
	if len(s.engines) > 1 && s.shardTooSparse(i) {
		return Result{Scores: mat.NewVector(eng.Users()), Converged: true, Generation: eng.Generation()}, nil
	}
	return eng.Rank(ctx)
}

// Metrics returns the aggregate observability snapshot of the cluster: the
// cluster version (sum of shard versions, the same freshness key Version
// and the merged-result cache use), the total user count, and every shard
// counter summed, with the router's own merged-cache hits folded into
// CacheHits. Each shard's slice of the snapshot is internally consistent
// (taken under that shard's locks); shards are visited in index order, so
// a write racing the scrape can skew the cross-shard sums by at most the
// writes in flight. Use ShardMetrics for the per-shard breakdown.
func (s *ShardedEngine) Metrics() EngineMetrics {
	agg := EngineMetrics{Users: s.Users(), Items: s.Items()}
	for _, e := range s.engines {
		agg.add(e.Metrics())
	}
	agg.CacheHits += s.routerHits.Load()
	if len(s.engines) > 1 {
		// Staleness is enforced at the router's merged cache, not in the
		// (always-exact) shard engines: report the router's watermark,
		// bound, and stale-serve count.
		agg.StaleServes += s.staleServes.Load()
		agg.ServedGeneration = s.servedGen.Load()
		agg.MaxStaleness = s.maxStale
	}
	return agg
}

// ShardMetrics returns one EngineMetrics per shard, in shard order — the
// per-shard breakdown behind the aggregate Metrics view. Each entry is
// consistent under its shard's locks.
func (s *ShardedEngine) ShardMetrics() []EngineMetrics {
	out := make([]EngineMetrics, len(s.engines))
	for i, e := range s.engines {
		out[i] = e.Metrics()
	}
	return out
}

// shardTooSparse reports whether shard i has fewer than two answering users
// — the population no spectral method can rank. The verdict is memoized per
// shard version, and the rescan path reads under the shard's lock without
// snapshotting, so steady-state Ranks over cache-hit shards neither touch
// their matrices nor poison their copy-on-write state.
func (s *ShardedEngine) shardTooSparse(i int) bool {
	version := s.engines[i].Version()
	s.mu.Lock()
	if m := s.sparse[i]; m.valid && m.version == version {
		s.mu.Unlock()
		return m.sparse
	}
	s.mu.Unlock()
	sparse := !s.engines[i].answeredAtLeast(2)
	s.mu.Lock()
	s.sparse[i] = sparseMemo{version: version, valid: true, sparse: sparse}
	s.mu.Unlock()
	return sparse
}
