package hitsndiffs

import (
	"context"
	"sort"
	"strings"
	"testing"
)

func TestMethodNamesSortedAndComplete(t *testing.T) {
	names := MethodNames()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("MethodNames not sorted: %v", names)
	}
	// Check by name, not by count: the process-global registry may also
	// hold custom methods registered by other tests in this run (or by a
	// previous -count pass — registrations are permanent by design).
	builtin := []string{
		"ABH-direct", "ABH-lanczos", "ABH-power", "BL", "Dalvi-spectral",
		"Dawid-Skene", "GLAD", "Ghosh-spectral", "HITS", "HnD-deflation",
		"HnD-direct", "HnD-power", "Invest", "MajorityVote", "PooledInv",
		"TruthFinder",
	}
	have := make(map[string]bool, len(names))
	for _, n := range names {
		have[n] = true
	}
	for _, n := range builtin {
		if !have[n] {
			t.Fatalf("built-in method %q missing from %v", n, names)
		}
	}
}

func TestDescribeMetadata(t *testing.T) {
	cases := map[string]func(MethodInfo) bool{
		"Ghosh-spectral": func(i MethodInfo) bool { return i.BinaryOnly },
		"Dalvi-spectral": func(i MethodInfo) bool { return i.BinaryOnly },
		"GLAD":           func(i MethodInfo) bool { return i.BinaryOnly },
		"Dawid-Skene":    func(i MethodInfo) bool { return i.HomogeneousOnly },
		"BL":             func(i MethodInfo) bool { return i.ConsistentOnly && !i.Iterative },
		"HnD-power":      func(i MethodInfo) bool { return i.Iterative && !i.BinaryOnly },
	}
	for name, check := range cases {
		info, ok := Describe(name)
		if !ok {
			t.Fatalf("Describe(%q) not found", name)
		}
		if !check(info) {
			t.Fatalf("Describe(%q) metadata wrong: %+v", name, info)
		}
		if info.Summary == "" {
			t.Fatalf("Describe(%q) lacks a summary", name)
		}
	}
}

func TestConstraintsRendering(t *testing.T) {
	info, _ := Describe("GLAD")
	tags := info.Constraints()
	if !strings.Contains(tags, "binary-only") || !strings.Contains(tags, "iterative") {
		t.Fatalf("GLAD constraints = %q", tags)
	}
	if unconstrained := (MethodInfo{}).Constraints(); unconstrained != "-" {
		t.Fatalf("empty constraints = %q", unconstrained)
	}
}

func TestRegisterValidation(t *testing.T) {
	if err := Register(MethodInfo{}, func(...Option) Ranker { return nil }); err == nil {
		t.Fatal("empty name must be rejected")
	}
	if err := Register(MethodInfo{Name: "x-nil-factory"}, nil); err == nil {
		t.Fatal("nil factory must be rejected")
	}
	if err := Register(MethodInfo{Name: "HnD-power"}, func(...Option) Ranker { return nil }); err == nil {
		t.Fatal("duplicate name must be rejected")
	}
}

// constRanker is a trivial custom method for registry extension tests.
type constRanker struct{}

func (constRanker) Name() string { return "test-const" }
func (constRanker) Rank(ctx context.Context, m *ResponseMatrix) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	scores := make([]float64, m.Users())
	for i := range scores {
		scores[i] = float64(i)
	}
	return Result{Scores: scores, Converged: true}, nil
}

func TestRegisterCustomMethod(t *testing.T) {
	err := Register(MethodInfo{Name: "test-const", Summary: "index-ordered test stub"},
		func(opts ...Option) Ranker { return constRanker{} })
	// Registrations are process-permanent, so under -count>1 the second run
	// finds the method already registered; that duplicate error is the
	// documented behaviour, not a failure.
	if err != nil && !strings.Contains(err.Error(), "already registered") {
		t.Fatal(err)
	}
	r, err := New("test-const")
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Rank(context.Background(), NewResponseMatrix(3, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if order := res.Order(); order[0] != 2 {
		t.Fatalf("custom method order = %v", order)
	}
	// And an Engine can serve it.
	eng, err := NewEngine(NewResponseMatrix(3, 1, 2), WithMethod("test-const"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Rank(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestOptionsAreIndependentPerCall(t *testing.T) {
	// A shared option list applied to two methods must not leak state.
	shared := []Option{WithTol(1e-3), WithMaxIter(50), WithSeed(4)}
	a, err := New("HnD-power", shared...)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New("HITS", shared...)
	if err != nil {
		t.Fatal(err)
	}
	m := FromChoices([][]int{{0, 0}, {0, 1}, {1, 1}}, 2)
	if _, err := a.Rank(context.Background(), m); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Rank(context.Background(), m); err != nil {
		t.Fatal(err)
	}
}

func TestWithWarmStartCopiesSlice(t *testing.T) {
	scores := []float64{3, 2, 1, 0}
	opt := WithWarmStart(scores)
	scores[0] = -99 // caller mutates after handing the slice over
	var s settings
	opt(&s)
	if s.warmStart[0] != 3 {
		t.Fatalf("WithWarmStart must copy; saw %v", s.warmStart)
	}
}

// The shared iteration budget must reach every method the registry marks
// Iterative — as an upper bound, never an inflation of fixed-round
// defaults.
func TestWithMaxIterBoundsEveryIterativeMethod(t *testing.T) {
	m := engineWorkload(t, 30, 20, 17)
	for _, name := range []string{"HnD-power", "ABH-power", "HITS", "TruthFinder", "Invest", "PooledInv", "Dawid-Skene"} {
		r, err := New(name, WithMaxIter(3), WithTol(1e-300))
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Rank(context.Background(), m)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Iterations > 3 {
			t.Fatalf("%s ran %d iterations with WithMaxIter(3)", name, res.Iterations)
		}
	}
	// Binary-only GLAD on a binary workload.
	bm := NewResponseMatrix(6, 5, 2)
	for u := 0; u < 6; u++ {
		for i := 0; i < 5; i++ {
			bm.SetAnswer(u, i, (u+i)%2)
		}
	}
	r, err := New("GLAD", WithMaxIter(3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Rank(context.Background(), bm)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 3 {
		t.Fatalf("GLAD ran %d EM rounds with WithMaxIter(3)", res.Iterations)
	}
}

// A large budget must not inflate the fixed-round methods past their
// paper defaults (Invest/PooledInv: 10 rounds, GLAD: 40, GRM EM: 40).
func TestLargeMaxIterDoesNotInflateFixedRounds(t *testing.T) {
	m := engineWorkload(t, 30, 20, 19)
	for name, maxRounds := range map[string]int{"Invest": 10, "PooledInv": 10} {
		r, err := New(name, WithMaxIter(20000))
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Rank(context.Background(), m)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Iterations > maxRounds {
			t.Fatalf("%s ran %d rounds with a 20000 budget (default is %d)", name, res.Iterations, maxRounds)
		}
	}
}

func TestGRMEstimatorHonorsMaxIter(t *testing.T) {
	cfg := DefaultGeneratorConfig(ModelGRM)
	cfg.Users, cfg.Items, cfg.Seed = 20, 15, 23
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := GRMEstimator(WithMaxIter(2)).Rank(context.Background(), d.Responses)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 2 {
		t.Fatalf("GRM estimator ran %d EM rounds with WithMaxIter(2)", res.Iterations)
	}
}
