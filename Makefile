# Development entry points. CI runs `make check`; `make bench` regenerates
# the performance-trajectory baseline committed as BENCH_pr10.json.

# pipefail so a failing benchmark run fails the bench target instead of
# being masked by tee's exit status.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -c

GO ?= go

# Benchmarks tracked as the perf baseline: the Figure 5 scaling workloads
# (serial vs parallel kernels), the isolated zero-alloc power-loop body,
# the pooled parallel dispatch path, CSR and block-diagonal assembly, the
# Engine serving paths, the sharded-router scaling curves, the batched
# multi-tenant ranking path, the warm re-rank allocation profile under
# the generation-keyed Update cache (vs. its WithUpdateCache(false)
# escape-hatch baseline), the durable WAL append path per fsync
# policy (always / interval / off) — the write-path overhead record —
# the staleness-bounded read path under steady writes (StaleRank:
# bound=0 inline baseline vs bounded stale serving), and the certified
# warm-update path (CertifiedWarmRerank: certified hit vs full warm
# solve vs mixed answer-changing traffic with hit/fallback ratios, plus
# the pooled zero-alloc CertifyKernel attempt itself).
BENCH_PATTERN ?= Fig5aScaleUsers|Fig5bScaleQuestions|HNDPowerInnerLoop|EngineSnapshot|EngineWarmVsCold|NewCSRAssembly|MulVecParallel|ParallelDoPooled|ShardedObserve|ShardedRank|BatchedRank|BlockDiag|WarmRerankAllocs|WALAppend|StaleRank|CertifiedWarmRerank|CertifyKernel
BENCH_TIME ?= 1x
BENCH_OUT ?= BENCH_pr10.json

# Serving-tier benchmark: scripts/serve_bench.sh starts hndserver, drives
# it with the hndload closed-loop generator (zipfian tenants, mixed
# read/write), converts the latency/throughput lines to JSON, and asserts
# a clean SIGTERM drain. serve-smoke is the short CI variant; it adds a
# write-burst leg under -max-staleness 16 (stale-ratio must be > 0 and the
# bound must hold) and runs scripts/serve_crash.sh, the kill-9-and-recover
# leg for durable mode.
SERVE_BENCH_OUT ?= BENCH_serve6.json

.PHONY: build test check bench serve-bench serve-smoke handoff-smoke clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -count=2 -race -shuffle=on ./...

bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -benchtime $(BENCH_TIME) -timeout 30m . ./internal/mat/ ./internal/durable/ | tee bench.out
	$(GO) run ./cmd/bench2json < bench.out > $(BENCH_OUT)
	@rm -f bench.out
	@echo "wrote $(BENCH_OUT)"

serve-bench:
	scripts/serve_bench.sh $(SERVE_BENCH_OUT)

serve-smoke:
	DURATION=2s TENANTS=3 USERS=400 CONCURRENCY=16 scripts/serve_bench.sh serve_smoke.json
	@python3 -c 'import json,sys; rows=json.load(open("serve_smoke.json"))["benchmarks"]; tp=[b["metrics"]["req/s"] for b in rows if "req/s" in b["metrics"]]; sys.exit(0 if tp and all(v>0 for v in tp) else ("serve-smoke: zero throughput: %s" % rows))' \
	  && echo "serve-smoke: non-zero throughput + clean drain confirmed"
	@rm -f serve_smoke.json
	# Write-burst leg under a staleness bound: a write-heavy mix must
	# actually serve stale (ratio > 0) while hndload's own -max-staleness
	# assertion proves the bound is never exceeded.
	MAX_STALENESS=16 DURATION=2s TENANTS=3 USERS=400 CONCURRENCY=16 READRATIO=0.5 \
	  scripts/serve_bench.sh serve_smoke_stale.json
	@python3 -c 'import json,sys; rows=json.load(open("serve_smoke_stale.json"))["benchmarks"]; sr=[b["metrics"]["stale-ratio"] for b in rows if "stale-ratio" in b["metrics"]]; sys.exit(0 if sr and all(v>0 for v in sr) else ("serve-smoke: write burst served no stale ranks: %s" % rows))' \
	  && echo "serve-smoke: stale serving under write burst + bound held confirmed"
	@rm -f serve_smoke_stale.json
	scripts/serve_crash.sh

# Cross-process shard-handoff smoke: the headline crash-matrix and
# bitwise-equivalence tests under -race, then the two-server HTTP
# migration with a kill -9 mid-fence (scripts/serve_handoff.sh).
handoff-smoke:
	$(GO) test -run Handoff -count=1 -race ./internal/handoff/ ./internal/serve/
	scripts/serve_handoff.sh

clean:
	rm -f bench.out serve_smoke.json
