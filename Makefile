# Development entry points. CI runs `make check`; `make bench` regenerates
# the performance-trajectory baseline committed as BENCH_pr5.json.

# pipefail so a failing benchmark run fails the bench target instead of
# being masked by tee's exit status.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -c

GO ?= go

# Benchmarks tracked as the perf baseline: the Figure 5 scaling workloads
# (serial vs parallel kernels), the isolated zero-alloc power-loop body,
# the pooled parallel dispatch path, CSR and block-diagonal assembly, the
# Engine serving paths, the sharded-router scaling curves, the batched
# multi-tenant ranking path, and the warm re-rank allocation profile under
# the generation-keyed Update cache (vs. its WithUpdateCache(false)
# escape-hatch baseline).
BENCH_PATTERN ?= Fig5aScaleUsers|Fig5bScaleQuestions|HNDPowerInnerLoop|EngineSnapshot|EngineWarmVsCold|NewCSRAssembly|MulVecParallel|ParallelDoPooled|ShardedObserve|ShardedRank|BatchedRank|BlockDiag|WarmRerankAllocs
BENCH_TIME ?= 1x
BENCH_OUT ?= BENCH_pr5.json

.PHONY: build test check bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -count=2 -race ./...

bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -benchtime $(BENCH_TIME) -timeout 30m . ./internal/mat/ | tee bench.out
	$(GO) run ./cmd/bench2json < bench.out > $(BENCH_OUT)
	@rm -f bench.out
	@echo "wrote $(BENCH_OUT)"

clean:
	rm -f bench.out
